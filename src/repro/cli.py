"""Command-line interface for the tool-flow.

Usage (also via ``python -m repro``)::

    repro models                      # list the built-in model zoo
    repro devices                     # list the FPGA device catalog
    repro compile MODEL [options]     # prototxt/zoo-name -> strategy + HLS
    repro sweep MODEL [options]       # latency vs transfer-constraint table
    repro sweep-grid --out DIR [...]  # parallel, resumable design-space sweep
    repro partition MODEL [options]   # split a model across a device fleet
    repro serve-sim MODEL [options]   # batched multi-replica serving sim
    repro plan-capacity --tenant ...  # SLO-aware multi-tenant fleet sizing
    repro winograd M R                # print F(M, R) transform matrices
    repro check ARTIFACT [...]        # validate saved strategy/plan files
    repro cache {stats,gc,clear}      # maintain the persistent cost store
    repro doctor [--deep]             # self-diagnose the whole toolflow

``MODEL`` is a prototxt path or a model-zoo name (``repro models``).
``repro compile``, ``sweep`` and ``partition`` accept ``--json`` for
machine-readable output.  ``compile``, ``partition`` and ``serve-sim``
verify their artifacts at admission; ``--no-verify`` skips that (the
output is bit-identical either way).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.errors import ReproError
from repro.hardware.device import DEVICES, get_device
from repro.nn import models
from repro.nn.caffe import model_from_prototxt
from repro.nn.graph import Graph
from repro.optimizer.dp import optimize_many
from repro.reporting import format_energy, format_ratio, format_table
from repro.serve.scheduler import Policy
from repro.toolflow import GraphCompileResult, compile_model

MB = 2**20


def _parse_size(text: str) -> int:
    """Parse '2MB', '340KB', '123456' into bytes."""
    cleaned = text.strip().upper()
    multiplier = 1
    for suffix, factor in (("MB", MB), ("KB", 1024), ("B", 1)):
        if cleaned.endswith(suffix):
            cleaned = cleaned[: -len(suffix)]
            multiplier = factor
            break
    try:
        return int(float(cleaned) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}") from None


def _store_from_args(args: argparse.Namespace):
    """``--cache [DIR]`` -> CostStore (empty DIR means the default root)."""
    cache = getattr(args, "cache", None)
    if cache is None:
        return None
    from repro.dse.store import CostStore

    return CostStore(cache or None)


def _load_model(name_or_path: str):
    """Resolve a zoo name or prototxt path to a Network or (DAG) Graph."""
    zoo = models.catalog()
    if name_or_path in zoo:
        return zoo[name_or_path]()
    graph_zoo = models.graph_catalog()
    if name_or_path in graph_zoo:
        return graph_zoo[name_or_path]()
    path = Path(name_or_path)
    if path.exists():
        # A branching prototxt resolves to a Graph; chains stay Networks.
        return model_from_prototxt(path.read_text())
    names = sorted(zoo) + sorted(graph_zoo)
    raise ReproError(
        f"{name_or_path!r} is neither a model-zoo name ({', '.join(names)}) "
        "nor an existing prototxt file"
    )


def _strategy_energy(result) -> Optional[tuple]:
    """(J/inference, board W) for a chain compile; None for graph results.

    Backed by the same :mod:`repro.hardware.power` helper the capacity
    planner charges per request, so ``repro compile --stats`` and
    ``repro plan-capacity`` always quote the same number.
    """
    if isinstance(result, GraphCompileResult):
        return None
    from repro.hardware.power import device_power_model

    strategy = result.strategy
    power_model = device_power_model(strategy.device)
    return (
        power_model.strategy_energy_per_inference_j(strategy),
        power_model.strategy_power_w(strategy),
    )


def _cmd_models(_args: argparse.Namespace) -> int:
    rows = []
    for name, ctor in sorted(models.catalog().items()):
        net = ctor()
        rows.append(
            [
                name,
                len(net),
                str(net.input_spec.shape),
                f"{net.total_ops() / 1e9:.2f}",
                f"{net.total_weights() / 1e6:.2f}",
            ]
        )
    print(
        format_table(
            ["model", "layers", "input", "GOP", "Mparams"], rows, title="model zoo"
        )
    )
    graph_rows = []
    for name, ctor in sorted(models.graph_catalog().items()):
        graph = ctor()
        graph_rows.append(
            [
                name,
                len(graph),
                str(graph.input_spec.shape),
                f"{graph.total_ops() / 1e9:.2f}",
                f"{graph.total_weights() / 1e6:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["model", "nodes", "input", "GOP", "Mparams"],
            graph_rows,
            title="graph (DAG) model zoo",
        )
    )
    return 0


def _cmd_devices(_args: argparse.Namespace) -> int:
    rows = []
    for name, dev in sorted(DEVICES.items()):
        r = dev.resources
        rows.append(
            [
                name,
                r.bram18k,
                r.dsp,
                r.ff,
                r.lut,
                f"{dev.bandwidth_bytes_per_s / 1e9:.1f}",
                f"{dev.frequency_hz / 1e6:.0f}",
            ]
        )
    print(
        format_table(
            ["device", "BRAM18K", "DSP", "FF", "LUT", "GB/s", "MHz"],
            rows,
            title="device catalog",
        )
    )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    network = _load_model(args.model)
    result = compile_model(
        network,
        device=args.device,
        transfer_constraint_bytes=args.transfer,
        output_dir=Path(args.out) if args.out else None,
        workers=args.workers,
        verify=not args.no_verify,
        store=_store_from_args(args),
    )
    if args.json:
        strategy = result.strategy
        if isinstance(result, GraphCompileResult):
            payload = {
                "kind": "graph_strategy",
                "graph": result.graph.name,
                "device": result.device.name,
                "latency_cycles": strategy.latency_cycles,
                "segments": [
                    {"kind": s.kind, "nodes": s.node_names()}
                    for s in strategy.segments
                ],
            }
        else:
            from repro.optimizer.serialize import strategy_to_dict

            payload = strategy_to_dict(strategy)
        payload["latency_seconds"] = strategy.latency_seconds()
        payload["effective_gops"] = strategy.effective_gops()
        if args.stats:
            if result.telemetry is not None:
                payload["telemetry"] = result.telemetry.to_dict()
            energy = _strategy_energy(result)
            if energy is not None:
                payload["energy_per_inference_j"] = energy[0]
                payload["board_power_w"] = energy[1]
        if args.simulate:
            sim = result.simulate()
            payload["simulated_cycles"] = sim.latency_cycles
        print(json.dumps(payload, indent=2))
        return 0
    print(result.strategy.report())
    if args.stats:
        energy = _strategy_energy(result)
        if energy is not None:
            joules, watts = energy
            print(
                f"\nenergy per inference: {format_energy(joules)} "
                f"({watts:.2f} W board power; the capacity planner's "
                f"per-request energy charge)"
            )
        if result.telemetry is not None:
            print()
            print(result.telemetry.summary())
    if args.out:
        print(f"\nHLS project written to {args.out}")
    if args.simulate:
        sim = result.simulate()
        print()
        print(sim.report())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    if isinstance(model, Graph):
        raise ReproError(
            "repro sweep is chain-only; compile a branching graph with "
            "'repro compile' (vary --transfer per run)"
        )
    network = model.accelerated_prefix()
    device = get_device(args.device)
    constraints = [_parse_size(c) for c in args.constraints.split(",")]
    strategies = optimize_many(
        network, device, constraints, workers=args.workers,
        store=_store_from_args(args),
    )
    baseline = None
    if args.baseline:
        from repro.baselines.alwani import alwani_design

        baseline = alwani_design(network, device)
    if args.json:
        entries = []
        for constraint, strategy in zip(constraints, strategies):
            entry = {
                "constraint_bytes": constraint,
                "latency_cycles": strategy.latency_cycles,
                "latency_seconds": strategy.latency_seconds(),
                "groups": len(strategy.designs),
                "effective_gops": strategy.effective_gops(),
            }
            if baseline is not None:
                entry["speedup_vs_baseline"] = (
                    baseline.latency_cycles / strategy.latency_cycles
                )
            entries.append(entry)
        payload = {
            "network": network.name,
            "device": device.name,
            "rows": entries,
        }
        if args.stats and strategies and strategies[-1].telemetry is not None:
            payload["telemetry"] = strategies[-1].telemetry.to_dict()
        print(json.dumps(payload, indent=2))
        return 0
    rows = []
    for constraint, strategy in zip(constraints, strategies):
        row = [
            f"{constraint / MB:.2f} MB",
            f"{strategy.latency_cycles / 1e6:.2f}",
            len(strategy.designs),
            f"{strategy.effective_gops():.0f}",
        ]
        if baseline is not None:
            row.append(
                format_ratio(baseline.latency_cycles / strategy.latency_cycles)
            )
        rows.append(row)
    headers = ["constraint", "latency (Mcyc)", "groups", "GOPS"]
    if baseline is not None:
        headers.append("speedup vs [1]")
    print(
        format_table(
            headers, rows, title=f"{network.name} on {device.name}"
        )
    )
    if args.stats and strategies and strategies[-1].telemetry is not None:
        print()
        print(strategies[-1].telemetry.summary())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.dse.store import CostStore

    store = CostStore(args.dir or None)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {store.root}")
        return 0
    if args.action == "gc":
        max_age_s = None
        if args.max_age_days is not None:
            max_age_s = args.max_age_days * 86400.0
        evicted = store.gc(max_entries=args.max_entries, max_age_s=max_age_s)
        print(f"evicted {evicted} entr{'y' if evicted == 1 else 'ies'}; "
              f"{store.stats().entries} remain in {store.root}")
        return 0
    stats = store.stats()
    if args.json:
        print(json.dumps(stats.to_dict(), indent=2))
    else:
        print(stats.summary())
    return 0


def _cmd_sweep_grid(args: argparse.Namespace) -> int:
    from repro.dse.grid import GridPoint, GridSpec
    from repro.dse.sweep import sweep_grid

    if args.spec:
        if any([args.models, args.devices]):
            print(
                "error: pass either --spec or --models/--devices, not both",
                file=sys.stderr,
            )
            return 1
        spec = GridSpec.from_file(args.spec)
    else:
        if not (args.models and args.devices):
            print(
                "error: either --spec FILE or both --models and --devices "
                "are required",
                file=sys.stderr,
            )
            return 1
        transfers = []
        for text in args.transfers.split(","):
            text = text.strip()
            transfers.append(None if text.lower() == "none" else _parse_size(text))
        spec = GridSpec(
            models=tuple(m.strip() for m in args.models.split(",")),
            devices=tuple(d.strip() for d in args.devices.split(",")),
            bandwidth_factors=tuple(
                float(f) for f in args.bw_factors.split(",")
            ),
            transfer_bytes=tuple(transfers),
            fleet_sizes=tuple(int(s) for s in args.fleet_sizes.split(",")),
        )
    out_dir = Path(args.out)
    store = None
    if not args.no_cache:
        store = args.cache or (out_dir / "cost_store")
    # A SIGTERM (scheduler preemption, timeout kill) must behave like
    # Ctrl-C: the engine flushes its journal, tears the pool down, and
    # surfaces one resumable-state line instead of a traceback.
    import signal

    def _terminate(_signum, _frame):
        raise KeyboardInterrupt

    previous_term = signal.signal(signal.SIGTERM, _terminate)
    try:
        result = sweep_grid(
            spec,
            out_dir,
            store=store,
            workers=args.workers,
            resume=args.resume,
            log=None if args.json else print,
            faults=args.faults,
            fault_seed=args.fault_seed,
            point_timeout_s=args.point_timeout,
            max_retries=args.max_retries,
        )
    finally:
        signal.signal(signal.SIGTERM, previous_term)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.ok else 1
    rows = []
    for record in result.records:
        point = GridPoint.from_dict(record["point"])
        body = record.get("result") or {}
        if record.get("ok"):
            latency = body.get("latency_seconds")
            gops = body.get("effective_gops")
            status = record.get("source", "computed")
            rows.append(
                [
                    point.describe(),
                    f"{latency * 1e3:.2f}" if latency else "-",
                    f"{gops:.0f}" if gops else "-",
                    status,
                ]
            )
        else:
            rows.append([point.describe(), "-", "-",
                         f"FAILED: {record.get('error')}"])
    print(format_table(
        ["point", "latency (ms)", "GOPS", "status"], rows,
        title=f"sweep grid ({len(result.records)} points)",
    ))
    print()
    print(result.summary())
    print(f"results: {out_dir / 'sweep_results.json'}")
    return 0 if result.ok else 1


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.partition import DeviceFleet, Link
    from repro.sim.gantt import render_fleet_gantt
    from repro.toolflow import partition_model

    if args.faults:
        # Parse eagerly: a bad spec fails in milliseconds, before the
        # partition search runs.
        from repro.faults import FaultSpec

        FaultSpec.parse(args.faults)
    network = _load_model(args.model)
    link = Link(
        bandwidth_bytes_per_s=args.link_gbs * 1e9,
        latency_s=args.link_latency_us * 1e-6,
    )
    fleet = DeviceFleet.from_spec(args.devices, link=link)
    plan = partition_model(
        network,
        devices=fleet,
        transfer_constraint_bytes=args.transfer,
        workers=args.workers,
        verify=not args.no_verify,
    )
    from repro.partition.graph_cut import GraphPartitionPlan

    if isinstance(plan, GraphPartitionPlan) and (
        args.simulate or args.serve is not None or args.save
    ):
        raise ReproError(
            "--simulate/--serve/--save are chain-only for now; graph "
            "partition plans support the report and --json views"
        )
    if args.json:
        payload = plan.to_dict()
        if args.stats and plan.telemetry is not None:
            payload["telemetry"] = plan.telemetry.to_dict()
        if args.simulate:
            sim = plan.simulate(faults=args.faults, fault_seed=args.seed)
            payload["simulated_latency_seconds"] = sim.latency_seconds
            payload["simulated_interval_seconds"] = sim.pipeline_interval_seconds
        if args.serve is not None:
            serving = _serve_partition(plan, args)
            payload["serving"] = serving.metrics.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(fleet.describe())
        print()
        print(plan.report())
        if args.stats and plan.telemetry is not None:
            print()
            print(plan.telemetry.summary())
        if args.simulate:
            sim = plan.simulate(faults=args.faults, fault_seed=args.seed)
            print()
            print(sim.report())
            print()
            print(render_fleet_gantt(sim))
        if args.serve is not None:
            serving = _serve_partition(plan, args)
            print()
            print(
                f"served {args.serve} synthetic requests through "
                f"{args.pipelines} pipeline(s) at {args.load:.2f}x load "
                f"(seed {args.seed}"
                + (f", faults {args.faults!r}" if args.faults else "")
                + ")"
            )
            print(serving.summary())
    if args.save:
        path = plan.save(args.save)
        if not args.json:
            print(f"\npartition plan written to {path}")
    return 0


def _serve_partition(plan, args: argparse.Namespace):
    """Run the pipelined serving simulation a ``--serve`` flag asked for."""
    import numpy as np

    fleet = plan.serve(
        pipelines=args.pipelines,
        faults=args.faults,
        fault_seed=args.seed,
        verify=not args.no_verify,
    )
    return fleet.run_open_loop(
        num_requests=args.serve,
        load=args.load,
        rng=np.random.default_rng(args.seed),
    )


def _cmd_replan(args: argparse.Namespace) -> int:
    """Dry-run the online re-partitioning the resilience plane performs."""
    import time

    from repro.partition import DeviceFleet, Link
    from repro.resilience import (
        ResiliencePolicy,
        handover_cycles,
        replan_cycles,
        replan_survivors,
    )
    from repro.toolflow import partition_model

    network = _load_model(args.model)
    link = Link(
        bandwidth_bytes_per_s=args.link_gbs * 1e9,
        latency_s=args.link_latency_us * 1e-6,
    )
    fleet = DeviceFleet.from_spec(args.devices, link=link)
    store = _store_from_args(args)
    plan = partition_model(
        network,
        devices=fleet,
        transfer_constraint_bytes=args.transfer,
        workers=args.workers,
        verify=not args.no_verify,
    )
    from repro.partition.graph_cut import GraphPartitionPlan

    if isinstance(plan, GraphPartitionPlan):
        raise ReproError(
            "repro replan is chain-only: online re-partitioning re-runs "
            "the cut-point DP, which graph plans do not use"
        )
    started = time.perf_counter()
    survivor = replan_survivors(
        plan,
        args.dead_stage,
        transfer_constraint_bytes=args.transfer,
        store=store,
        workers=args.workers,
    )
    wall_s = time.perf_counter() - started
    policy = ResiliencePolicy()
    hz = plan.fleet.reference_frequency_hz
    budget = replan_cycles(policy, hz)
    handover = handover_cycles(survivor, reference_hz=hz)
    if args.json:
        payload = {
            "original": plan.to_dict(),
            "dead_stage": args.dead_stage,
            "survivor": survivor.to_dict(),
            "replan_wall_seconds": wall_s,
            "replan_budget_cycles": budget,
            "handover_cycles": handover,
            "readmission_cycles": budget + handover,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(plan.report())
        print()
        dead_device = plan.placements[args.dead_stage].device.name
        print(
            f"stage {args.dead_stage} ({dead_device}) declared dead; "
            f"re-planned over {len(survivor.fleet.devices)} survivor(s) "
            f"in {wall_s * 1e3:.1f} ms wall clock"
        )
        print()
        print(survivor.report())
        print()
        print(
            f"virtual-clock price at {hz / 1e6:.0f} MHz: "
            f"{budget:,.0f} cycle replan budget + {handover:,.0f} cycle "
            f"weight handover = {budget + handover:,.0f} cycles to "
            f"readmission"
        )
    if args.save:
        path = survivor.save(args.save)
        if not args.json:
            print(f"\nsurvivor plan written to {path}")
    return 0


def _unique_tenant_names(names: List[str]) -> List[str]:
    """Disambiguate duplicate model names: vgg_e, vgg_e-2, vgg_e-3, ..."""
    seen: dict = {}
    unique = []
    for name in names:
        seen[name] = seen.get(name, 0) + 1
        unique.append(name if seen[name] == 1 else f"{name}-{seen[name]}")
    return unique


def _serve_sim_multi(
    args: argparse.Namespace, model_specs: List[str], fault_seed: int
) -> int:
    """Multi-tenant serve-sim: several models sharing one replica fleet."""
    from repro.capacity import MultiTenantScheduler
    from repro.traffic import REFERENCE_FREQUENCY_HZ, TrafficTrace, load_trace

    device = get_device(args.device)
    networks = [_load_model(spec) for spec in model_specs]
    if any(isinstance(network, Graph) for network in networks):
        raise ReproError(
            "serve-sim serves linear models; flatten branching graphs first"
        )
    names = _unique_tenant_names([network.name for network in networks])
    if args.trace:
        trace = load_trace(args.trace)
        if len(trace.tenants) != len(networks):
            raise ReproError(
                f"trace {args.trace} holds {len(trace.tenants)} tenant "
                f"stream(s) for {len(networks)} model(s); counts must match "
                "(streams map to models by position)"
            )
        names = [tenant.name for tenant in trace.tenants]
    else:
        if not args.arrival:
            raise ReproError(
                "multi-tenant serve-sim needs an arrival model: pass "
                "--arrival with '|'-separated specs, or --trace"
            )
        specs = [spec.strip() for spec in args.arrival.split("|")]
        if len(specs) == 1:
            specs = specs * len(networks)
        if len(specs) != len(networks):
            raise ReproError(
                f"{len(specs)} arrival spec(s) for {len(networks)} "
                "model(s); pass one spec per model ('|'-separated) or a "
                "single spec shared by all"
            )
        trace = TrafficTrace.record(
            dict(zip(names, specs)),
            num_requests=args.requests,
            seed=args.seed,
        )
    weights = None
    if args.weights:
        values = [float(w) for w in args.weights.split(",")]
        if len(values) != len(names):
            raise ReproError(
                f"{len(values)} weight(s) for {len(names)} tenant(s)"
            )
        weights = dict(zip(names, values))
    strategies = {}
    for name, network in zip(names, networks):
        compiled = compile_model(
            network,
            device=args.device,
            transfer_constraint_bytes=args.transfer,
            verify=not args.no_verify,
        )
        strategies[name] = compiled.strategy
    resilience = None
    if args.resilience:
        from repro.resilience import ResiliencePolicy

        resilience = ResiliencePolicy()
    scheduler = MultiTenantScheduler.for_strategies(
        strategies,
        weights=weights,
        slo_cycles={name: args.slo for name in names} if args.slo else None,
        verify=not args.no_verify,
        replicas=args.replicas,
        policy=args.policy,
        sharing=args.sharing,
        max_batch=args.max_batch,
        max_wait_cycles=args.max_wait,
        faults=args.faults,
        fault_seed=fault_seed,
        max_queue=args.max_queue,
        resilience=resilience,
    )
    scale = device.frequency_hz / REFERENCE_FREQUENCY_HZ
    result = scheduler.run_trace(trace, scale=scale)
    log_path = None
    if args.recovery_log:
        from repro.resilience import save_recovery_log

        log_path = save_recovery_log(
            args.recovery_log,
            resilience,
            result.recovery,
            faults=scheduler.faults,
            seed=fault_seed,
        )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    source = (
        f"replayed trace {args.trace}"
        if args.trace
        else f"generated trace (seed {args.seed})"
    )
    print(
        f"serving {len(names)} tenant(s) on {args.replicas} x {args.device} "
        f"(policy {args.policy}, max batch {args.max_batch}, {source})"
    )
    if args.faults:
        print(f"fault schedule: {args.faults!r} (fault seed {fault_seed})")
    print()
    print(result.summary())
    if log_path is not None:
        print(f"\nrecovery log written to {log_path}")
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    if args.faults:
        # Parse eagerly: a bad spec fails in milliseconds, before the
        # compile step runs.
        from repro.faults import FaultSpec

        FaultSpec.parse(args.faults)
    if (args.fallback or args.recovery_log) and not args.resilience:
        raise ReproError("--fallback and --recovery-log require --resilience")
    fault_seed = args.fault_seed if args.fault_seed is not None else args.seed
    model_specs = [args.model] + (
        [m.strip() for m in args.models.split(",") if m.strip()]
        if args.models
        else []
    )
    if args.trace or len(model_specs) > 1:
        if args.fallback:
            raise ReproError(
                "--fallback is single-tenant only (shared fleets have no "
                "warm-swap rung)"
            )
        return _serve_sim_multi(args, model_specs, fault_seed)
    resilience = None
    if args.resilience:
        from repro.resilience import ResiliencePolicy

        resilience = ResiliencePolicy()
    network = _load_model(args.model)
    result = compile_model(
        network,
        device=args.device,
        transfer_constraint_bytes=args.transfer,
        verify=not args.no_verify,
    )
    fleet = result.serve(
        replicas=args.replicas,
        policy=args.policy,
        max_batch=args.max_batch,
        max_wait_cycles=args.max_wait,
        faults=args.faults,
        fault_seed=fault_seed,
        max_queue=args.max_queue,
        slo_cycles=args.slo,
        resilience=resilience,
        fallback=result.fallback_strategy() if args.fallback else None,
        verify=not args.no_verify,
    )
    if args.arrival:
        from repro.traffic import REFERENCE_FREQUENCY_HZ, TrafficTrace

        trace = TrafficTrace.record(
            {network.name: args.arrival},
            num_requests=args.requests,
            seed=args.seed,
        )
        scale = get_device(args.device).frequency_hz / REFERENCE_FREQUENCY_HZ
        tenant = trace.scaled(scale).tenants[0]
        serving = fleet.run(tenant.cycles, arrival=tenant.arrival_meta())
        load_line = (
            f"arrival trace: {args.requests} requests from "
            f"{tenant.spec!r} (seed {args.seed})"
        )
    else:
        serving = fleet.run_open_loop(
            num_requests=args.requests,
            load=args.load,
            seed=args.seed,
        )
        load_line = (
            f"open-loop trace: {args.requests} requests at {args.load:.2f}x "
            f"one replica's peak rate (seed {args.seed})"
        )
    log_path = None
    if args.recovery_log:
        from repro.resilience import save_recovery_log

        log_path = save_recovery_log(
            args.recovery_log,
            resilience,
            serving.metrics.recovery,
            faults=fleet.faults,
            seed=fault_seed,
        )
    if args.json:
        print(json.dumps(serving.metrics.to_dict(), indent=2))
        return 0
    print(
        f"serving {network.name} on {args.replicas} x {args.device} "
        f"(policy {args.policy}, max batch {args.max_batch}, "
        f"strategy latency {result.strategy.latency_cycles:,} cycles)"
    )
    print(load_line)
    if args.faults:
        print(f"fault schedule: {args.faults!r} (fault seed {fault_seed})")
    print()
    print(serving.summary())
    if log_path is not None:
        print(f"\nrecovery log written to {log_path}")
    return 0


_TENANT_SPEC_KEYS = {
    "name", "model", "arrival", "requests", "slo-ms", "goodput",
    "weight", "priority", "min-share",
}


def _parse_tenant_demand(text: str):
    """Parse one ``--tenant`` spec into a TenantDemand.

    Fields are ';'-separated ``key=value`` pairs (';' because arrival
    specs themselves contain ':' and ','), e.g.::

        name=vision;model=vgg_e;arrival=diurnal:mean=9000,period=2e6;slo-ms=5
    """
    from repro.capacity import TenantDemand

    fields = {}
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in _TENANT_SPEC_KEYS:
            raise ReproError(
                f"bad --tenant field {part!r} (expected key=value with key "
                f"in {sorted(_TENANT_SPEC_KEYS)})"
            )
        fields[key] = value.strip()
    missing = {"name", "model", "arrival"} - fields.keys()
    if missing:
        raise ReproError(
            f"--tenant spec {text!r} is missing {sorted(missing)}"
        )
    return TenantDemand(
        name=fields["name"],
        model=_load_model(fields["model"]),
        arrival=fields["arrival"],
        num_requests=int(fields.get("requests", 200)),
        slo_latency_s=(
            float(fields["slo-ms"]) / 1e3 if "slo-ms" in fields else None
        ),
        min_goodput_rps=(
            float(fields["goodput"]) if "goodput" in fields else None
        ),
        weight=float(fields["weight"]) if "weight" in fields else None,
        priority=int(fields.get("priority", 0)),
        min_share=float(fields.get("min-share", 0.0)),
    )


def _cmd_plan_capacity(args: argparse.Namespace) -> int:
    from repro.capacity import plan_capacity, plan_per_model_fleets

    demands = [_parse_tenant_demand(spec) for spec in args.tenant]
    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    batch_sizes = [int(b) for b in args.batch_sizes.split(",")]
    store = _store_from_args(args)
    common = dict(
        devices=devices,
        max_replicas=args.max_replicas,
        batch_sizes=batch_sizes,
        policy=args.policy,
        seed=args.seed,
        faults=args.faults,
        fault_seed=args.fault_seed,
        transfer_constraint_bytes=args.transfer,
        store=store,
        verify=not args.no_verify,
    )
    plan = plan_capacity(
        demands,
        sharing=args.sharing,
        log=None if args.json else print,
        **common,
    )
    baseline = (
        plan_per_model_fleets(demands, **common) if args.baseline else None
    )
    if args.json:
        payload = plan.to_payload()
        if baseline is not None:
            payload["baseline"] = {
                "board_cost": baseline.board_cost,
                "energy_j": baseline.energy_j,
                "fleets": baseline.fleets,
            }
        print(json.dumps(payload, indent=2))
    else:
        print()
        print(plan.summary())
        if baseline is not None:
            print()
            print(baseline.summary())
            saved = baseline.board_cost - plan.board_cost
            print(
                f"consolidation saves {saved:.2f} board-cost unit(s) "
                f"({saved / baseline.board_cost * 100:.0f}%) and "
                f"{format_energy(baseline.energy_j - plan.energy_j)} "
                "vs dedicated per-model fleets"
            )
    if args.save:
        path = plan.save(args.save)
        if not args.json:
            print(f"\ncapacity plan written to {path}")
    return 0


def _check_one(path: Path, model: Optional[str]) -> List[str]:
    """Validate one artifact file; the returned lines describe failures."""
    from repro.check.artifacts import describe_artifact, load_envelope
    from repro.check.invariants import verify_plan, verify_strategy

    envelope = load_envelope(path)
    print(f"{path}: {describe_artifact(envelope)}")
    if envelope.kind == "codegen_strategy":
        # The embedded codegen blob is a report, not a loadable strategy;
        # envelope integrity (checksum, digests, schema) is the check.
        print(f"{path}: envelope integrity ok")
        return []
    if envelope.kind == "traffic_trace":
        # Schema-validate by loading; the digest is the determinism witness.
        from repro.traffic import load_trace

        trace = load_trace(path)
        print(f"{path}: {trace.summary().splitlines()[0]}")
        return []
    if envelope.kind == "capacity_plan":
        from repro.capacity import load_capacity_plan

        plan = load_capacity_plan(path)
        print(f"{path}: {plan.summary().splitlines()[0]}")
        return []
    if envelope.kind == "recovery_log":
        # The checksum is the determinism witness; schema-check the
        # decision log's required fields.
        payload = envelope.payload
        missing = [
            key
            for key in ("schema_version", "policy", "events", "summary")
            if key not in payload
        ]
        if missing:
            return [
                f"{path}: recovery_log payload missing "
                f"{', '.join(missing)}"
            ]
        summary = payload["summary"]
        print(
            f"{path}: {len(payload['events'])} recovery event(s), "
            f"{summary.get('ladder_steps', 0)} ladder step(s), "
            f"{summary.get('rebuilds', 0)} rebuild(s)"
        )
        return []
    if envelope.kind == "torture_report":
        # The checksum is the integrity witness; schema-check the cells
        # and re-assert the verdict the harness recorded.
        payload = envelope.payload
        cells = payload.get("cells")
        if not isinstance(cells, list) or "ok" not in payload:
            return [f"{path}: torture_report payload missing cells/ok"]
        failed = [cell for cell in cells if not cell.get("ok")]
        uncovered = payload.get("uncovered_points", [])
        print(
            f"{path}: {len(cells)} torture cell(s), "
            f"{len(failed)} failed, "
            f"{len(uncovered)} uncovered point(s)"
        )
        if not payload["ok"]:
            return [f"{path}: torture report records failures"]
        return []

    name = model or envelope.payload.get("network")
    if not isinstance(name, str):
        return [f"{path}: cannot determine the network (pass --model)"]
    network = _load_model(name)
    # Toolflow artifacts cover the accelerated prefix; fall back to the
    # full network for strategies saved outside the toolflow.
    candidates = [network.accelerated_prefix()]
    if len(candidates[0]) != len(network):
        candidates.append(network)
    last_error: Optional[ReproError] = None
    for candidate in candidates:
        try:
            if envelope.kind == "partition_plan":
                from repro.partition.plan import load_plan

                plan = load_plan(path, candidate)
                report = verify_plan(plan)
            else:
                from repro.optimizer.serialize import load_strategy

                strategy = load_strategy(path, candidate)
                report = verify_strategy(strategy)
            print(f"{path}: {report.summary()}")
            return [] if report.ok else [f"{path}: verification failed"]
        except ReproError as exc:
            last_error = exc
    return [f"{path}: {last_error}"]


def _cmd_check(args: argparse.Namespace) -> int:
    failures: List[str] = []
    for name in args.artifacts:
        try:
            failures.extend(_check_one(Path(name), args.model))
        except ReproError as exc:
            failures.append(f"{name}: {exc}")
    if failures:
        for line in failures:
            print(f"error: {line}", file=sys.stderr)
        return 1
    print(f"{len(args.artifacts)} artifact(s) ok")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.check.consistency import doctor

    report = doctor(deep=args.deep)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_torture(args: argparse.Namespace) -> int:
    import tempfile

    from repro.check.durability import (
        run_chaos_sweep,
        run_kill_point_matrix,
        save_torture_report,
    )

    emit = (lambda _line: None) if args.json else print
    workloads = (
        [name.strip() for name in args.workloads.split(",")]
        if args.workloads
        else None
    )
    with tempfile.TemporaryDirectory(dir=args.workdir) as tmp:
        report = run_kill_point_matrix(
            Path(tmp), workloads=workloads, log=emit
        )
        if args.chaos:
            report.chaos = run_chaos_sweep(
                Path(tmp) / "chaos",
                workers=args.workers,
                kill_p=args.kill_p,
                eio_p=args.eio_p,
                seed=args.seed,
                max_retries=args.max_retries,
                log=emit,
            )
    if args.report:
        save_torture_report(args.report, report)
        emit(f"report: {args.report}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_winograd(args: argparse.Namespace) -> int:
    from repro.algorithms.poly import to_numpy
    from repro.algorithms.winograd import exact_transform_matrices, winograd_transform

    transform = winograd_transform(args.m, args.r)
    at, g, bt = exact_transform_matrices(args.m, args.r)
    print(
        f"F({args.m}, {args.r}): alpha={transform.alpha}, 2-D reduction "
        f"{transform.multiplication_reduction:.2f}x"
    )
    for name, matrix in (("A^T", at), ("G", g), ("B^T", bt)):
        print(f"{name} =")
        for row in to_numpy(matrix):
            print("  [" + "  ".join(f"{value:8.4f}" for value in row) + "]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous conventional/Winograd CNN-to-FPGA tool-flow "
        "(DAC 2017 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the built-in model zoo").set_defaults(
        func=_cmd_models
    )
    sub.add_parser("devices", help="list the FPGA device catalog").set_defaults(
        func=_cmd_devices
    )

    compile_p = sub.add_parser("compile", help="map a model onto an FPGA")
    compile_p.add_argument("model", help="prototxt path or model-zoo name")
    compile_p.add_argument("--device", default="zc706", choices=sorted(DEVICES))
    compile_p.add_argument(
        "--transfer",
        type=_parse_size,
        default=None,
        help="feature-map transfer constraint, e.g. 2MB or 340KB "
        "(default: unconstrained)",
    )
    compile_p.add_argument("--out", default=None, help="write the HLS project here")
    compile_p.add_argument(
        "--simulate", action="store_true", help="run the cycle-approximate simulator"
    )
    compile_p.add_argument(
        "--stats", action="store_true",
        help="print search telemetry (evaluations, cache hits, B&B nodes, "
        "per-group wall time)",
    )
    compile_p.add_argument(
        "--workers", type=int, default=None,
        help="precompute fusion[i][j] searches with N threads "
        "(strategy-preserving)",
    )
    compile_p.add_argument(
        "--json", action="store_true",
        help="emit the strategy as JSON instead of the report table",
    )
    compile_p.add_argument(
        "--no-verify", action="store_true",
        help="skip the admission-time invariant validators "
        "(output is bit-identical when verification passes)",
    )
    compile_p.add_argument(
        "--cache", nargs="?", const="", default=None, metavar="DIR",
        help="warm the search from (and persist it to) an on-disk cost "
        "store; DIR defaults to $REPRO_COST_CACHE or "
        "~/.cache/repro/cost_store (strategy-preserving)",
    )
    compile_p.set_defaults(func=_cmd_compile)

    sweep_p = sub.add_parser("sweep", help="latency vs transfer-constraint table")
    sweep_p.add_argument("model")
    sweep_p.add_argument("--device", default="zc706", choices=sorted(DEVICES))
    sweep_p.add_argument(
        "--constraints",
        default="2MB,4MB,8MB,16MB,32MB",
        help="comma-separated constraints (default: the Figure 5 sweep)",
    )
    sweep_p.add_argument(
        "--baseline",
        action="store_true",
        help="also run the Alwani et al. [MICRO'16] baseline",
    )
    sweep_p.add_argument(
        "--stats", action="store_true",
        help="print search telemetry for the shared sweep search",
    )
    sweep_p.add_argument(
        "--workers", type=int, default=None,
        help="precompute fusion[i][j] searches with N threads "
        "(strategy-preserving)",
    )
    sweep_p.add_argument(
        "--json", action="store_true",
        help="emit the sweep rows as JSON instead of the table",
    )
    sweep_p.add_argument(
        "--cache", nargs="?", const="", default=None, metavar="DIR",
        help="warm the sweep from (and persist it to) an on-disk cost "
        "store; DIR defaults to $REPRO_COST_CACHE or "
        "~/.cache/repro/cost_store (strategy-preserving)",
    )
    sweep_p.set_defaults(func=_cmd_sweep)

    grid_p = sub.add_parser(
        "sweep-grid",
        help="parallel, resumable design-space sweep over a grid spec",
    )
    grid_p.add_argument(
        "--spec", default=None, metavar="FILE",
        help="JSON grid spec (models/devices/bandwidth_factors/"
        "transfer_bytes/fleet_sizes axes); or build one with the "
        "axis flags below",
    )
    grid_p.add_argument(
        "--models", default=None,
        help="comma-separated model-zoo names or prototxt paths",
    )
    grid_p.add_argument(
        "--devices", default=None,
        help="comma-separated device catalog names",
    )
    grid_p.add_argument(
        "--transfers", default="none", metavar="LIST",
        help="comma-separated transfer budgets, e.g. 2MB,8MB,none "
        "(default: none = unconstrained)",
    )
    grid_p.add_argument(
        "--bw-factors", default="1.0", metavar="LIST",
        help="comma-separated bandwidth scale factors (default 1.0)",
    )
    grid_p.add_argument(
        "--fleet-sizes", default="1", metavar="LIST",
        help="comma-separated fleet sizes; >1 partitions the model "
        "across that many copies of the device (default 1)",
    )
    grid_p.add_argument(
        "--out", required=True, metavar="DIR",
        help="output directory for the journal and sweep_results.json",
    )
    grid_p.add_argument(
        "--workers", type=int, default=None,
        help="fan points out over N worker processes (results are "
        "bit-identical to a serial run)",
    )
    grid_p.add_argument(
        "--resume", action="store_true",
        help="honor the journal of an interrupted sweep in --out: "
        "completed points are not recomputed",
    )
    grid_p.add_argument(
        "--cache", default=None, metavar="DIR",
        help="cost store shared by all workers "
        "(default: <out>/cost_store)",
    )
    grid_p.add_argument(
        "--no-cache", action="store_true",
        help="run memory-only, without the persistent cost store",
    )
    grid_p.add_argument(
        "--json", action="store_true",
        help="emit the full sweep result as JSON instead of the table",
    )
    grid_p.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="per-point hang budget: a worker silent this long is "
        "terminated and its point requeued (default: no hang detection)",
    )
    grid_p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="requeues per point after worker deaths/hangs before it "
        "is recorded as failed (default 2)",
    )
    grid_p.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject deterministic process faults into the workers "
        "(torture testing), e.g. 'kill:p=0.2,point=sweep.point_start"
        ";eio:p=0.05'",
    )
    grid_p.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the --faults schedule (default 0)",
    )
    grid_p.set_defaults(func=_cmd_sweep_grid)

    cache_p = sub.add_parser(
        "cache", help="inspect or maintain the persistent cost store"
    )
    cache_p.add_argument(
        "action", choices=["stats", "gc", "clear"],
        help="stats: show size/shard counters; gc: evict by age/count "
        "and compact; clear: delete every entry",
    )
    cache_p.add_argument(
        "--dir", default=None, metavar="DIR",
        help="store root (default: $REPRO_COST_CACHE or "
        "~/.cache/repro/cost_store)",
    )
    cache_p.add_argument(
        "--max-entries", type=int, default=None,
        help="gc: keep at most this many entries (newest kept)",
    )
    cache_p.add_argument(
        "--max-age-days", type=float, default=None,
        help="gc: evict entries older than this many days",
    )
    cache_p.add_argument(
        "--json", action="store_true",
        help="stats: emit JSON instead of the summary",
    )
    cache_p.set_defaults(func=_cmd_cache)

    part_p = sub.add_parser(
        "partition", help="split a model across a fleet of FPGAs"
    )
    part_p.add_argument("model", help="prototxt path or model-zoo name")
    part_p.add_argument(
        "--devices", default="zc706,zc706",
        help="comma-separated fleet in pipeline order, e.g. zc706,zcu102 "
        "(default: zc706,zc706)",
    )
    part_p.add_argument(
        "--link-gbs", type=float, default=2.0,
        help="board-to-board link bandwidth in GB/s (default 2.0)",
    )
    part_p.add_argument(
        "--link-latency-us", type=float, default=0.0,
        help="per-transfer link setup latency in microseconds",
    )
    part_p.add_argument(
        "--transfer", type=_parse_size, default=None,
        help="per-stage feature-map transfer constraint, e.g. 2MB "
        "(default: unconstrained on every board)",
    )
    part_p.add_argument(
        "--simulate", action="store_true",
        help="run the fleet simulator and print the pipeline Gantt chart",
    )
    part_p.add_argument(
        "--stats", action="store_true",
        help="print search telemetry (stage queries, cuts considered, ...)",
    )
    part_p.add_argument(
        "--workers", type=int, default=None,
        help="precompute fusion searches with N threads",
    )
    part_p.add_argument(
        "--save", default=None, metavar="PATH",
        help="write the partition plan JSON here",
    )
    part_p.add_argument(
        "--json", action="store_true",
        help="emit the plan as JSON instead of the report table",
    )
    part_p.add_argument(
        "--serve", type=int, default=None, metavar="N",
        help="also serve N synthetic requests through the pipelined fleet",
    )
    part_p.add_argument(
        "--pipelines", type=int, default=1,
        help="independent pipeline copies behind one batcher (default 1)",
    )
    part_p.add_argument(
        "--load", type=float, default=1.5,
        help="offered load for --serve, relative to one pipeline's peak "
        "rate (default 1.5)",
    )
    part_p.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault schedule for --simulate/--serve, e.g. "
        "'link:index=0,at=1e5,for=2e4,scale=4;crash:replica=0,at=2e6,"
        "down=1e6' (kinds: crash, transient, brownout, link)",
    )
    part_p.add_argument(
        "--seed", type=int, default=0,
        help="seed for --serve arrivals and the fault injector",
    )
    part_p.add_argument(
        "--no-verify", action="store_true",
        help="skip the admission-time plan validators "
        "(output is bit-identical when verification passes)",
    )
    part_p.set_defaults(func=_cmd_partition)

    replan_p = sub.add_parser(
        "replan",
        help="dry-run the resilience plane's online re-partitioning: "
        "declare one pipeline stage dead and re-cut over the survivors",
    )
    replan_p.add_argument("model", help="prototxt path or model-zoo name")
    replan_p.add_argument(
        "--devices", default="zc706,zc706",
        help="comma-separated fleet in pipeline order (default zc706,zc706)",
    )
    replan_p.add_argument(
        "--dead-stage", type=int, default=0, metavar="N",
        help="stage whose device dies (default 0)",
    )
    replan_p.add_argument(
        "--link-gbs", type=float, default=2.0,
        help="board-to-board link bandwidth in GB/s (default 2.0)",
    )
    replan_p.add_argument(
        "--link-latency-us", type=float, default=0.0,
        help="per-transfer link setup latency in microseconds",
    )
    replan_p.add_argument(
        "--transfer", type=_parse_size, default=None,
        help="per-stage feature-map transfer constraint, e.g. 2MB",
    )
    replan_p.add_argument(
        "--cache", nargs="?", const="", default=None, metavar="DIR",
        help="route both searches through an on-disk cost store so the "
        "re-plan is a warm-cache operation; DIR defaults to "
        "$REPRO_COST_CACHE or ~/.cache/repro/cost_store",
    )
    replan_p.add_argument(
        "--workers", type=int, default=None,
        help="precompute fusion searches with N threads "
        "(wall time only; the plan is deterministic)",
    )
    replan_p.add_argument(
        "--save", default=None, metavar="PATH",
        help="write the survivor plan JSON here",
    )
    replan_p.add_argument(
        "--json", action="store_true",
        help="emit both plans and the re-plan price as JSON",
    )
    replan_p.add_argument(
        "--no-verify", action="store_true",
        help="skip the admission-time plan validators",
    )
    replan_p.set_defaults(func=_cmd_replan)

    serve_p = sub.add_parser(
        "serve-sim", help="simulate a batched multi-replica serving fleet"
    )
    serve_p.add_argument("model", help="prototxt path or model-zoo name")
    serve_p.add_argument("--device", default="zc706", choices=sorted(DEVICES))
    serve_p.add_argument(
        "--transfer", type=_parse_size, default=None,
        help="feature-map transfer constraint for the compile step",
    )
    serve_p.add_argument(
        "--replicas", type=int, default=1, help="accelerator instances (default 1)"
    )
    serve_p.add_argument(
        "--requests", type=int, default=200,
        help="synthetic requests to serve (default 200)",
    )
    serve_p.add_argument(
        "--load", type=float, default=1.5,
        help="offered load as a multiple of one replica's peak full-batch "
        "rate (default 1.5: saturates a single replica)",
    )
    serve_p.add_argument(
        "--arrival", default=None, metavar="SPEC",
        help="generate the trace from an arrival-process spec at the "
        "100 MHz reference clock instead of --load, e.g. "
        "'diurnal:mean=9000,period=2e6,depth=0.8' "
        "('|'-separated list in multi-tenant mode)",
    )
    serve_p.add_argument(
        "--models", default=None, metavar="LIST",
        help="comma-separated co-tenant models sharing the fleet "
        "(multi-tenant mode; see --weights and --sharing)",
    )
    serve_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="replay a recorded traffic_trace artifact; tenant streams "
        "map to models by position",
    )
    serve_p.add_argument(
        "--weights", default=None, metavar="LIST",
        help="comma-separated weighted-fair scheduler weights, one per "
        "model (default: 1 each)",
    )
    serve_p.add_argument(
        "--sharing", default="weighted_fair",
        choices=["weighted_fair", "strict_priority"],
        help="multi-tenant sharing discipline (default weighted_fair)",
    )
    serve_p.add_argument(
        "--max-batch", type=int, default=8, help="dynamic batch size cap"
    )
    serve_p.add_argument(
        "--max-wait", type=float, default=None,
        help="partial-batch deadline in cycles "
        "(default: half the single-image latency)",
    )
    serve_p.add_argument(
        "--policy", default="least_loaded",
        choices=[p.value for p in Policy],
        help="batch placement policy",
    )
    serve_p.add_argument(
        "--seed", type=int, default=0, help="arrival-trace RNG seed"
    )
    serve_p.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault schedule, e.g. "
        "'transient:p=0.1;crash:replica=1,at=2e6,down=1e6' "
        "(kinds: crash, transient, brownout, link)",
    )
    serve_p.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed of the transient-failure draws (default: --seed)",
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=None,
        help="admission-control bound: shed arrivals beyond this many "
        "queued requests (default: unbounded)",
    )
    serve_p.add_argument(
        "--slo", type=float, default=None, metavar="CYCLES",
        help="latency SLO in cycles; reports SLO attainment",
    )
    serve_p.add_argument(
        "--resilience", action="store_true",
        help="attach the online control plane (repro.resilience): health "
        "monitoring, the degradation ladder, and recovery accounting; "
        "a zero-fault run is bit-identical with or without it",
    )
    serve_p.add_argument(
        "--fallback", action="store_true",
        help="pre-compile a conventional-algorithm fallback strategy for "
        "the ladder's warm-swap rung (requires --resilience; "
        "single-tenant mode only)",
    )
    serve_p.add_argument(
        "--recovery-log", default=None, metavar="PATH",
        help="write the run's checksummed recovery_log artifact "
        "(requires --resilience)",
    )
    serve_p.add_argument(
        "--json", action="store_true",
        help="emit the metrics as JSON instead of the summary text",
    )
    serve_p.add_argument(
        "--no-verify", action="store_true",
        help="skip the admission-time invariant validators "
        "(output is bit-identical when verification passes)",
    )
    serve_p.set_defaults(func=_cmd_serve_sim)

    plan_p = sub.add_parser(
        "plan-capacity",
        help="size a shared multi-tenant fleet to meet per-model SLOs",
    )
    plan_p.add_argument(
        "--tenant", action="append", required=True, metavar="SPEC",
        help="one tenant demand as ';'-separated key=value fields: "
        "'name=vision;model=vgg_e;arrival=diurnal:mean=9000,period=2e6;"
        "slo-ms=5;requests=200;goodput=100;weight=2;priority=1;"
        "min-share=0.2' (name, model, arrival required; repeatable)",
    )
    plan_p.add_argument(
        "--devices", default="zc706",
        help="comma-separated candidate devices; each fleet is "
        "homogeneous (default zc706)",
    )
    plan_p.add_argument(
        "--max-replicas", type=int, default=4,
        help="largest replica count to try per device (default 4)",
    )
    plan_p.add_argument(
        "--batch-sizes", default="1,4,8",
        help="comma-separated dynamic-batch caps to try (default 1,4,8)",
    )
    plan_p.add_argument(
        "--policy", default="least_loaded",
        choices=[p.value for p in Policy],
        help="batch placement policy",
    )
    plan_p.add_argument(
        "--sharing", default="weighted_fair",
        choices=["weighted_fair", "strict_priority"],
        help="sharing discipline of the planned fleet",
    )
    plan_p.add_argument(
        "--seed", type=int, default=0,
        help="traffic seed; the same seed replays the identical trace "
        "in any later re-plan",
    )
    plan_p.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="stress-test candidates under this deterministic fault "
        "schedule; the plan then meets its SLOs under that disturbance",
    )
    plan_p.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the transient-failure draws (default 0)",
    )
    plan_p.add_argument(
        "--transfer", type=_parse_size, default=None,
        help="feature-map transfer constraint for the compile steps",
    )
    plan_p.add_argument(
        "--baseline", action="store_true",
        help="also price dedicated per-model fleets for comparison",
    )
    plan_p.add_argument(
        "--save", default=None, metavar="PATH",
        help="write the chosen plan here as a capacity_plan artifact",
    )
    plan_p.add_argument(
        "--json", action="store_true",
        help="emit the plan as JSON instead of the summary",
    )
    plan_p.add_argument(
        "--no-verify", action="store_true",
        help="skip the admission-time invariant validators",
    )
    plan_p.add_argument(
        "--cache", nargs="?", const="", default=None, metavar="DIR",
        help="warm the per-device compiles from (and persist them to) an "
        "on-disk cost store",
    )
    plan_p.set_defaults(func=_cmd_plan_capacity)

    wino_p = sub.add_parser("winograd", help="print F(m, r) transform matrices")
    wino_p.add_argument("m", type=int)
    wino_p.add_argument("r", type=int)
    wino_p.set_defaults(func=_cmd_winograd)

    check_p = sub.add_parser(
        "check", help="validate saved strategy/plan artifact files"
    )
    check_p.add_argument(
        "artifacts", nargs="+", metavar="ARTIFACT",
        help="artifact JSON files (strategy, partition plan, or a "
        "generated project's strategy.json)",
    )
    check_p.add_argument(
        "--model", default=None,
        help="network the artifacts belong to (default: the network "
        "name recorded in each artifact, resolved from the model zoo)",
    )
    check_p.set_defaults(func=_cmd_check)

    doctor_p = sub.add_parser(
        "doctor", help="self-diagnose the toolflow on the tiny built-in model"
    )
    doctor_p.add_argument(
        "--deep", action="store_true",
        help="also run the DP-vs-exhaustive-oracle and serving smoke checks",
    )
    doctor_p.add_argument(
        "--json", action="store_true",
        help="emit the check results as JSON instead of the summary",
    )
    doctor_p.set_defaults(func=_cmd_doctor)

    torture_p = sub.add_parser(
        "torture",
        help="crash-consistency torture: kill a child at every "
        "registered crash point, verify and recover (docs/durability.md)",
    )
    torture_p.add_argument(
        "--workloads", default=None, metavar="LIST",
        help="comma-separated workload subset (artifact, journal, "
        "cost_store, sweep); default: all of them",
    )
    torture_p.add_argument(
        "--chaos", action="store_true",
        help="also run the chaos sweep: seeded worker kills + EIO must "
        "produce records checksum-equal to the fault-free sweep",
    )
    torture_p.add_argument(
        "--kill-p", type=float, default=0.2,
        help="chaos worker-kill probability per point pickup (default 0.2)",
    )
    torture_p.add_argument(
        "--eio-p", type=float, default=0.05,
        help="chaos injected-EIO probability per write (default 0.05)",
    )
    torture_p.add_argument(
        "--seed", type=int, default=7, help="chaos fault seed (default 7)"
    )
    torture_p.add_argument(
        "--workers", type=int, default=2,
        help="chaos sweep worker processes (default 2)",
    )
    torture_p.add_argument(
        "--max-retries", type=int, default=5,
        help="chaos per-point requeue budget (default 5)",
    )
    torture_p.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="parent directory for the scratch tree (default: system tmp)",
    )
    torture_p.add_argument(
        "--report", default=None, metavar="FILE",
        help="also save the full report as a torture_report artifact",
    )
    torture_p.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of the summary",
    )
    torture_p.set_defaults(func=_cmd_torture)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        # One clean line, no traceback: bad prototxt, unknown device,
        # infeasible strategy, unwritable output directory, ...
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Ctrl-C outside a command's own handling (the sweep engine
        # converts its interrupts into a resumable-state SweepError
        # before this is reached).
        print("error: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
