"""The paper's optimal strategy search (Section 5).

Given an N-layer CNN, a device resource vector R and a feature-map
transfer constraint T, find the strategy S = {<group, algorithm,
parallelism>} minimizing end-to-end latency:

* :mod:`repro.optimizer.strategy` — the strategy IR and reports;
* :mod:`repro.optimizer.branch_and_bound` — Algorithm 2, the depth-first
  branch-and-bound that evaluates ``fusion[i][j]`` (best fused design of
  a layer range under R, balancing the inter-layer pipeline);
* :mod:`repro.optimizer.dp` — Algorithm 1, the dynamic program over
  (layer range, transfer budget); provided both as the paper's literal
  tabular recurrence over 10 KB transfer units and as an equivalent
  exact Pareto-frontier formulation that is fast in Python;
* :mod:`repro.optimizer.exhaustive` — a brute-force oracle used by the
  tests to certify optimality on small networks;
* :mod:`repro.optimizer.graph_dp` — the branch-aware lift of the whole
  stack onto the DAG IR: series-parallel decomposition drives the same
  DP/B&B machinery per branch, joins are priced for transfer, and chain
  graphs degenerate bit-identically to :func:`~repro.optimizer.dp.optimize`.

All of them evaluate design points through the shared signature-keyed
evaluation layer (:mod:`repro.perf.cost`): pass one
:class:`~repro.perf.cost.EvalContext` to share ``implement()`` results
and search telemetry across groups, constraint sweeps and devices.
"""

from repro.optimizer.strategy import LayerChoice, Strategy
from repro.optimizer.branch_and_bound import GroupSearch, fuse_group
from repro.optimizer.dp import (
    TRANSFER_UNIT_BYTES,
    FrontierOptimizer,
    optimize,
    optimize_many,
    optimize_tabular,
)
from repro.optimizer.graph_dp import (
    ChainSegment,
    FusedParallelSegment,
    GraphOptimizer,
    GraphStrategy,
    ParallelSegment,
    optimize_graph,
)
from repro.optimizer.serialize import load_strategy, save_strategy
from repro.perf.cost import CostModel, EvalContext, SearchTelemetry

__all__ = [
    "ChainSegment",
    "CostModel",
    "EvalContext",
    "FrontierOptimizer",
    "FusedParallelSegment",
    "GraphOptimizer",
    "GraphStrategy",
    "GroupSearch",
    "LayerChoice",
    "ParallelSegment",
    "SearchTelemetry",
    "Strategy",
    "TRANSFER_UNIT_BYTES",
    "fuse_group",
    "load_strategy",
    "optimize",
    "optimize_graph",
    "optimize_many",
    "optimize_tabular",
    "save_strategy",
]
