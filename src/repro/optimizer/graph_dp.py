"""Branch-aware optimization over the series-parallel decomposition.

Lifts the paper's fusion/transfer machinery from layer chains onto the
DAG IR (:mod:`repro.nn.graph`).  The graph is factored into its
series-parallel tree; then:

* maximal runs of series nodes become chain sub-networks and run through
  the *unchanged* Pareto-frontier DP
  (:class:`~repro.optimizer.dp.FrontierOptimizer`) — a linear graph is
  one such run, so chain networks degenerate bit-identically to the
  chain optimizer (asserted in tests);
* every parallel block contributes a frontier of its own, built from two
  candidate families:

  - **split** — each branch is optimized independently (recursively) and
    the branches execute one after another on the single device;
    transfers and latencies add, and the join is priced for transfer: a
    concat is free (channel-major layout makes it pure address
    aliasing), an eltwise join pays a DRAM round trip over its inputs
    and output;
  - **fused** — the whole fork-join region runs as one on-chip group:
    each branch keeps its best single-group design (Algorithm 2 per
    branch), branch pipelines run concurrently (compute is the max,
    resources add), and only the fork tensor and the join output touch
    DRAM — the macro-layer module engine's traffic shape, but with
    per-branch algorithm/parallelism choices (e.g. Winograd on a 3x3
    branch) the macro engine cannot express;

* series composition is the usual frontier cross-product with Pareto
  pruning, exact for the additive (transfer, latency) objective.

All cost evaluation flows through one shared
:class:`~repro.perf.cost.EvalContext`; its keys are graph-position
independent (layer signature + input shape only), so the persistent cost
store built by chain compiles warms graph compiles and vice versa.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import OptimizationError, ResourceError
from repro.hardware.device import FPGADevice
from repro.hardware.resources import ResourceVector
from repro.nn.graph import Graph, SPLeaf, SPParallel, SPSeries, sp_leaf_names
from repro.nn.layers import ConcatLayer, InputSpec
from repro.nn.network import Network
from repro.optimizer.branch_and_bound import GroupSearch
from repro.optimizer.dp import (
    FrontierOptimizer,
    _flush_context,
    _prune,
    _store_context,
)
from repro.optimizer.strategy import Strategy
from repro.perf.cost import CostModel, EvalContext, SearchTelemetry
from repro.perf.group import fifo_overhead

_INF = float("inf")


# ---------------------------------------------------------------------------
# Strategy segments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChainSegment:
    """A series run of nodes optimized by the unchanged chain DP."""

    nodes: Tuple[str, ...]
    strategy: Strategy

    kind = "chain"

    @property
    def latency_cycles(self) -> int:
        return self.strategy.latency_cycles

    @property
    def feature_transfer_bytes(self) -> int:
        return self.strategy.feature_transfer_bytes

    @property
    def weight_transfer_bytes(self) -> int:
        return self.strategy.weight_transfer_bytes

    @property
    def total_ops(self) -> int:
        return self.strategy.total_ops

    @property
    def peak_resources(self) -> ResourceVector:
        return self.strategy.peak_resources

    def node_names(self) -> List[str]:
        return list(self.nodes)


@dataclass(frozen=True)
class ParallelSegment:
    """A fork-join block in split mode: branches run one after another.

    Each branch carries its own (recursive) :class:`GraphStrategy`; an
    identity skip is a branch with zero segments.  The join's transfer
    cost rides on the segment: zero for a concat, a DRAM round trip for
    an eltwise combine.
    """

    fork: Optional[str]
    join: str
    join_kind: str  #: "concat" or "eltwise"
    branches: Tuple["GraphStrategy", ...]
    join_transfer_bytes: int
    join_latency_cycles: int
    join_ops: int

    kind = "parallel"

    @property
    def latency_cycles(self) -> int:
        return (
            sum(b.latency_cycles for b in self.branches)
            + self.join_latency_cycles
        )

    @property
    def feature_transfer_bytes(self) -> int:
        return (
            sum(b.feature_transfer_bytes for b in self.branches)
            + self.join_transfer_bytes
        )

    @property
    def weight_transfer_bytes(self) -> int:
        return sum(b.weight_transfer_bytes for b in self.branches)

    @property
    def total_ops(self) -> int:
        return sum(b.total_ops for b in self.branches) + self.join_ops

    @property
    def peak_resources(self) -> ResourceVector:
        # Branches execute sequentially: the device is reconfigured (or
        # time-shared) between them, so the peak is the max, not the sum.
        peak = ResourceVector()
        for branch in self.branches:
            peak = _resource_max(peak, branch.peak_resources)
        return peak

    def node_names(self) -> List[str]:
        names: List[str] = []
        for branch in self.branches:
            names.extend(branch.node_names())
        names.append(self.join)
        return names


@dataclass(frozen=True)
class FusedParallelSegment:
    """A fork-join block fused into one on-chip group.

    Branch pipelines run concurrently off one streamed copy of the fork
    tensor; only the fork tensor and the join output cross DRAM.
    ``branch_implementations`` holds each branch's engines (empty tuple
    for an identity skip).
    """

    fork: Optional[str]
    join: str
    join_kind: str
    branch_nodes: Tuple[Tuple[str, ...], ...]
    branch_implementations: Tuple[Tuple, ...]
    resources: ResourceVector
    compute_cycles: int
    transfer_cycles: int
    fill_cycles: int
    latency_cycles: int
    feature_transfer_bytes: int
    weight_transfer_bytes: int
    ops: int

    kind = "fused"

    @property
    def total_ops(self) -> int:
        return self.ops

    @property
    def peak_resources(self) -> ResourceVector:
        return self.resources

    def node_names(self) -> List[str]:
        names: List[str] = []
        for nodes in self.branch_nodes:
            names.extend(nodes)
        names.append(self.join)
        return names


Segment = Union[ChainSegment, ParallelSegment, FusedParallelSegment]


def _resource_max(a: ResourceVector, b: ResourceVector) -> ResourceVector:
    return ResourceVector(
        bram18k=max(a.bram18k, b.bram18k),
        dsp=max(a.dsp, b.dsp),
        ff=max(a.ff, b.ff),
        lut=max(a.lut, b.lut),
    )


# ---------------------------------------------------------------------------
# GraphStrategy
# ---------------------------------------------------------------------------


class GraphStrategy:
    """A complete branch-aware assignment for one graph on one device.

    The DAG sibling of :class:`~repro.optimizer.strategy.Strategy`:
    top-level segments execute in series, so latencies and DRAM traffic
    add; each segment must fit the device on its own.
    """

    def __init__(
        self,
        graph: Graph,
        device: FPGADevice,
        segments: Sequence[Segment],
        telemetry: Optional[SearchTelemetry] = None,
    ):
        if not segments and len(graph) > 0:
            raise OptimizationError("a graph strategy needs at least one segment")
        self.graph = graph
        self.device = device
        self.segments: List[Segment] = list(segments)
        self.telemetry = telemetry

    # -- aggregate metrics ----------------------------------------------------

    @property
    def latency_cycles(self) -> int:
        return sum(segment.latency_cycles for segment in self.segments)

    def latency_seconds(self) -> float:
        return self.device.cycles_to_seconds(self.latency_cycles)

    @property
    def feature_transfer_bytes(self) -> int:
        return sum(s.feature_transfer_bytes for s in self.segments)

    @property
    def weight_transfer_bytes(self) -> int:
        return sum(s.weight_transfer_bytes for s in self.segments)

    @property
    def total_ops(self) -> int:
        return sum(s.total_ops for s in self.segments)

    def effective_gops(self) -> float:
        seconds = self.latency_seconds()
        return self.total_ops / seconds / 1e9 if seconds > 0 else 0.0

    @property
    def peak_resources(self) -> ResourceVector:
        peak = ResourceVector()
        for segment in self.segments:
            peak = _resource_max(peak, segment.peak_resources)
        return peak

    def node_names(self) -> List[str]:
        """Every graph node this strategy covers, in execution order."""
        names: List[str] = []
        for segment in self.segments:
            names.extend(segment.node_names())
        return names

    def validate(self, transfer_constraint_bytes: Optional[int] = None) -> None:
        """Check device fit per segment and the optional transfer bound."""
        for segment in self.segments:
            if isinstance(segment, ChainSegment):
                segment.strategy.validate()
            elif isinstance(segment, ParallelSegment):
                for branch in segment.branches:
                    branch.validate()
            elif not segment.resources.fits(self.device.resources):
                raise ResourceError(
                    f"fused block at {segment.join!r} needs "
                    f"{segment.resources}, device {self.device.name} "
                    f"provides {self.device.resources}"
                )
        if (
            transfer_constraint_bytes is not None
            and self.feature_transfer_bytes > transfer_constraint_bytes
        ):
            raise OptimizationError(
                f"graph strategy transfers {self.feature_transfer_bytes} "
                f"feature-map bytes, constraint is {transfer_constraint_bytes}"
            )

    # -- reporting ------------------------------------------------------------

    def _segment_lines(self, indent: str = "") -> List[str]:
        lines: List[str] = []
        for stage, segment in enumerate(self.segments):
            if isinstance(segment, ChainSegment):
                lines.append(
                    f"{indent}stage {stage} [chain] "
                    f"{segment.nodes[0]}..{segment.nodes[-1]}: "
                    f"{len(segment.strategy.designs)} group(s), "
                    f"{segment.latency_cycles:,} cycles"
                )
                for design in segment.strategy.designs:
                    for impl in design.implementations:
                        lines.append(
                            f"{indent}  {impl.layer_name:<20} "
                            f"{impl.algorithm.value:<12} p={impl.parallelism}"
                        )
            elif isinstance(segment, ParallelSegment):
                lines.append(
                    f"{indent}stage {stage} [parallel/split] "
                    f"fork={segment.fork or 'input'} "
                    f"join={segment.join} ({segment.join_kind}, "
                    f"{len(segment.branches)} branches): "
                    f"{segment.latency_cycles:,} cycles"
                )
                for b, branch in enumerate(segment.branches):
                    if not branch.segments:
                        lines.append(f"{indent}  branch {b}: identity skip")
                        continue
                    lines.append(
                        f"{indent}  branch {b}: "
                        f"{branch.latency_cycles:,} cycles"
                    )
                    lines.extend(branch._segment_lines(indent + "    "))
            else:
                lines.append(
                    f"{indent}stage {stage} [parallel/fused] "
                    f"fork={segment.fork or 'input'} "
                    f"join={segment.join} ({segment.join_kind}, "
                    f"{len(segment.branch_nodes)} branches): "
                    f"{segment.latency_cycles:,} cycles, "
                    f"{segment.bottleneck}-bound"
                )
                for b, impls in enumerate(segment.branch_implementations):
                    if not impls:
                        lines.append(f"{indent}  branch {b}: identity skip")
                        continue
                    for impl in impls:
                        lines.append(
                            f"{indent}  b{b} {impl.layer_name:<18} "
                            f"{impl.algorithm.value:<12} p={impl.parallelism}"
                        )
        return lines

    def report(self) -> str:
        """Branch structure, per-layer choices and aggregate numbers."""
        lines = [
            f"Graph strategy for {self.graph.name!r} on {self.device.name}: "
            f"{len(self.segments)} stage(s), "
            f"latency {self.latency_cycles:,} cycles "
            f"({self.latency_seconds() * 1e3:.2f} ms), "
            f"{self.effective_gops():.1f} effective GOPS"
        ]
        lines.extend(self._segment_lines())
        lines.append(
            f"feature-map transfer: {self.feature_transfer_bytes / 2**20:.2f} "
            f"MB, weight transfer: {self.weight_transfer_bytes / 2**20:.2f} MB"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"GraphStrategy(stages={len(self.segments)}, "
            f"latency={self.latency_cycles}, "
            f"transfer={self.feature_transfer_bytes})"
        )


# Fused segments expose the same bottleneck naming as GroupDesign.
def _bottleneck(self: FusedParallelSegment) -> str:
    return "compute" if self.compute_cycles >= self.transfer_cycles else "bandwidth"


FusedParallelSegment.bottleneck = property(_bottleneck)


# ---------------------------------------------------------------------------
# Frontier search
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _GPlan:
    """A (transfer, latency) point plus the builders that materialize it."""

    transfer_bytes: int
    latency_cycles: int
    builders: Tuple[Callable[[], Segment], ...]


class GraphOptimizer:
    """Exact (transfer, latency) frontiers over a series-parallel graph.

    Mirrors :class:`~repro.optimizer.dp.FrontierOptimizer`'s surface for
    graphs: one shared evaluation context, a frontier query, a best-plan
    lookup under the paper's T, and materialization into a
    :class:`GraphStrategy`.
    """

    def __init__(
        self,
        graph: Graph,
        device: FPGADevice,
        explore_tile_sizes: bool = False,
        node_budget: int = 250_000,
        context: Optional[CostModel] = None,
        workers: Optional[int] = None,
    ):
        if len(graph) == 0:
            raise OptimizationError("cannot optimize an empty graph")
        self.graph = graph
        self.device = device
        self.context: CostModel = context if context is not None else EvalContext()
        self._optimizer_kwargs = dict(
            explore_tile_sizes=explore_tile_sizes,
            node_budget=node_budget,
        )
        self.workers = workers
        self._tree = graph.decompose()
        self._frontier: Optional[List[_GPlan]] = None
        self._chain_runs: Dict[Tuple[str, ...], FrontierOptimizer] = {}

    @property
    def telemetry(self):
        return self.context.stats

    # -- chain runs -----------------------------------------------------------

    def _chain_network(self, graph: Graph, names: Tuple[str, ...]) -> Network:
        """The sub-Network of a series run of nodes."""
        if len(names) == len(graph) and graph.is_chain:
            # Whole-graph run: keep the graph's own name so the chain
            # degeneracy is exact (network identity included).
            return graph.to_network()
        first = graph.node(names[0])
        spec = InputSpec(*first.input_shapes[0])
        layers = [graph.node(name).layer for name in names]
        return Network(
            f"{graph.name}[{names[0]}..{names[-1]}]", spec, layers
        )

    def _run_optimizer(
        self, graph: Graph, names: Tuple[str, ...]
    ) -> FrontierOptimizer:
        cached = self._chain_runs.get(names)
        if cached is None:
            cached = FrontierOptimizer(
                self._chain_network(graph, names),
                self.device,
                context=self.context,
                workers=self.workers,
                **self._optimizer_kwargs,
            )
            self._chain_runs[names] = cached
        return cached

    def _chain_frontier(
        self, graph: Graph, names: Tuple[str, ...]
    ) -> List[_GPlan]:
        optimizer = self._run_optimizer(graph, names)
        plans = []
        for plan in optimizer.frontier(0, len(names)):
            plans.append(
                _GPlan(
                    transfer_bytes=plan.transfer_bytes,
                    latency_cycles=plan.latency_cycles,
                    builders=(
                        lambda p=plan, o=optimizer, n=names: ChainSegment(
                            nodes=n, strategy=o.materialize(p)
                        ),
                    ),
                )
            )
        return plans

    # -- series / parallel composition ---------------------------------------

    @staticmethod
    def _combine(
        left: List[_GPlan], right: List[_GPlan]
    ) -> List[_GPlan]:
        """Cross-product of two series frontiers, Pareto-pruned."""
        combined = [
            _GPlan(
                transfer_bytes=a.transfer_bytes + b.transfer_bytes,
                latency_cycles=a.latency_cycles + b.latency_cycles,
                builders=a.builders + b.builders,
            )
            for a in left
            for b in right
        ]
        return _prune(combined)

    def _series_frontier(self, graph: Graph, series: SPSeries) -> List[_GPlan]:
        frontier: Optional[List[_GPlan]] = None
        run: List[str] = []

        def flush_run() -> None:
            nonlocal frontier, run
            if not run:
                return
            chain = self._chain_frontier(graph, tuple(run))
            frontier = chain if frontier is None else self._combine(frontier, chain)
            run = []

        for block in series.blocks:
            if isinstance(block, SPLeaf):
                run.append(block.node)
                continue
            flush_run()
            parallel = self._parallel_frontier(graph, block)
            frontier = (
                parallel
                if frontier is None
                else self._combine(frontier, parallel)
            )
        flush_run()
        return frontier if frontier is not None else []

    def _join_cost(
        self, graph: Graph, join_name: str
    ) -> Tuple[str, int, int, int]:
        """(kind, transfer_bytes, latency_cycles, ops) of a split-mode join."""
        info = graph.node(join_name)
        if isinstance(info.layer, ConcatLayer):
            # Channel-major layout: branches already stored adjacent
            # channel ranges; the concat is pure address aliasing.
            return "concat", 0, 0, 0
        element_bytes = self.device.element_bytes
        transfer = (info.input_size + info.output_size) * element_bytes
        latency = math.ceil(transfer / self.device.bytes_per_cycle)
        return "eltwise", transfer, latency, info.ops

    def _parallel_frontier(
        self, graph: Graph, block: SPParallel
    ) -> List[_GPlan]:
        fork_ref = block.fork if block.fork is not None else graph.input_name
        fork_shape = graph.producer_shape(fork_ref)
        spec = InputSpec(*fork_shape)
        join_kind, join_transfer, join_latency, join_ops = self._join_cost(
            graph, block.join
        )

        subgraphs: List[Optional[Graph]] = []
        branch_fronts: List[List[_GPlan]] = []
        for index, branch in enumerate(block.branches):
            if not branch.blocks:  # identity skip
                subgraphs.append(None)
                branch_fronts.append(
                    [_GPlan(transfer_bytes=0, latency_cycles=0, builders=())]
                )
                continue
            names = sp_leaf_names(branch)
            sub = graph.subgraph(
                names,
                name=f"{graph.name}/{fork_ref}..{block.join}#{index}",
                input_name=fork_ref,
                input_spec=spec,
            )
            subgraphs.append(sub)
            branch_fronts.append(self._series_frontier(sub, branch))

        # Split mode: cross-product of branch frontiers (additive both
        # ways — branches share the device sequentially), join priced in.
        split: List[_GPlan] = [
            _GPlan(transfer_bytes=0, latency_cycles=0, builders=())
        ]
        for front in branch_fronts:
            split = [
                _GPlan(
                    transfer_bytes=a.transfer_bytes + b.transfer_bytes,
                    latency_cycles=a.latency_cycles + b.latency_cycles,
                    builders=a.builders + (b.builders,),  # nested per branch
                )
                for a in split
                for b in front
            ]
            split = _prune(split)

        def split_builder(plan: _GPlan) -> Callable[[], Segment]:
            branch_builders = plan.builders  # tuple of tuples

            def build() -> Segment:
                branches = []
                for sub, builders in zip(subgraphs, branch_builders):
                    if sub is None:
                        empty = Graph(
                            f"{graph.name}/identity",
                            spec,
                            [],
                            input_name=fork_ref,
                        )
                        branches.append(
                            GraphStrategy(empty, self.device, [])
                        )
                    else:
                        branches.append(
                            GraphStrategy(
                                sub,
                                self.device,
                                [b() for b in builders],
                            )
                        )
                return ParallelSegment(
                    fork=block.fork,
                    join=block.join,
                    join_kind=join_kind,
                    branches=tuple(branches),
                    join_transfer_bytes=join_transfer,
                    join_latency_cycles=join_latency,
                    join_ops=join_ops,
                )

            return build

        plans = [
            _GPlan(
                transfer_bytes=p.transfer_bytes + join_transfer,
                latency_cycles=p.latency_cycles + join_latency,
                builders=(split_builder(p),),
            )
            for p in split
        ]

        fused = self._fused_candidate(graph, block, subgraphs, fork_shape)
        if fused is not None:
            plans.append(fused)
        return _prune(plans)

    def _fused_candidate(
        self,
        graph: Graph,
        block: SPParallel,
        subgraphs: List[Optional[Graph]],
        fork_shape,
    ) -> Optional[_GPlan]:
        """One whole-block on-chip design, when every branch is a chain."""
        branch_designs = []
        branch_names: List[Tuple[str, ...]] = []
        for sub in subgraphs:
            if sub is None:
                branch_designs.append(None)
                branch_names.append(())
                continue
            if not sub.is_chain:
                return None  # nested forks: split mode only
            names = sub.topo_order
            network = sub.to_network()
            search = GroupSearch(
                network,
                self.device,
                context=self.context,
                **self._optimizer_kwargs,
            )
            design = search.fusion(0, len(network))
            if design is None:
                return None
            branch_designs.append(design)
            branch_names.append(names)

        join_info = graph.node(block.join)
        element_bytes = self.device.element_bytes
        fork_bytes = (
            fork_shape[0] * fork_shape[1] * fork_shape[2] * element_bytes
        )
        out_bytes = join_info.output_size * element_bytes
        feature_bytes = fork_bytes + out_bytes
        join_kind = (
            "concat" if isinstance(join_info.layer, ConcatLayer) else "eltwise"
        )
        join_ops = 0 if join_kind == "concat" else join_info.ops

        real = [d for d in branch_designs if d is not None]
        resources = ResourceVector.total(d.resources for d in real)
        # Fork fan-out and join fan-in FIFO channels on top of the
        # branches' internal ones (already inside each design).
        resources = resources + fifo_overhead(2 * len(block.branches) + 1)
        if not resources.fits(self.device.resources):
            return None
        compute = max(d.compute_cycles for d in real)
        fill = max(d.fill_cycles for d in real)
        weight_bytes = sum(d.weight_transfer_bytes for d in real)
        transfer_cycles = math.ceil(
            (feature_bytes + weight_bytes) / self.device.bytes_per_cycle
        )
        latency = max(compute, transfer_cycles) + fill
        ops = sum(d.ops for d in real) + join_ops

        def build() -> Segment:
            return FusedParallelSegment(
                fork=block.fork,
                join=block.join,
                join_kind=join_kind,
                branch_nodes=tuple(branch_names),
                branch_implementations=tuple(
                    () if d is None else d.implementations
                    for d in branch_designs
                ),
                resources=resources,
                compute_cycles=compute,
                transfer_cycles=transfer_cycles,
                fill_cycles=fill,
                latency_cycles=latency,
                feature_transfer_bytes=feature_bytes,
                weight_transfer_bytes=weight_bytes,
                ops=ops,
            )

        return _GPlan(
            transfer_bytes=feature_bytes,
            latency_cycles=latency,
            builders=(build,),
        )

    # -- queries --------------------------------------------------------------

    def frontier(self) -> List[_GPlan]:
        """Non-dominated (transfer, latency) plans for the whole graph."""
        if self._frontier is None:
            self._frontier = self._series_frontier(self.graph, self._tree)
        return self._frontier

    def best_plan(self, transfer_constraint_bytes: int) -> _GPlan:
        """Cheapest plan whose feature-map transfer fits the constraint."""
        frontier = self.frontier()
        feasible = [
            p for p in frontier if p.transfer_bytes <= transfer_constraint_bytes
        ]
        if not feasible:
            minimum = min(
                (p.transfer_bytes for p in frontier), default=None
            )
            hint = (
                f"; the minimum achievable is {minimum} bytes"
                if minimum is not None
                else "; no feasible design fits the device at all"
            )
            raise OptimizationError(
                f"no graph strategy fits transfer constraint "
                f"{transfer_constraint_bytes} bytes{hint}"
            )
        return min(feasible, key=lambda p: p.latency_cycles)

    def materialize(self, plan: _GPlan) -> GraphStrategy:
        """Turn a plan into a full GraphStrategy with segment designs."""
        return GraphStrategy(
            self.graph,
            self.device,
            [builder() for builder in plan.builders],
            telemetry=self.telemetry,
        )


def optimize_graph(
    graph: Graph,
    device: FPGADevice,
    transfer_constraint_bytes: int,
    explore_tile_sizes: bool = False,
    node_budget: int = 250_000,
    context: Optional[CostModel] = None,
    workers: Optional[int] = None,
    store=None,
) -> GraphStrategy:
    """Minimal-latency branch-aware strategy under a transfer constraint.

    The DAG sibling of :func:`repro.optimizer.dp.optimize` — identical
    knobs, and bit-identical output on chain graphs (the whole graph is
    then one series run through the unchanged chain DP).
    """
    context = _store_context(context, store)
    optimizer = GraphOptimizer(
        graph,
        device,
        explore_tile_sizes=explore_tile_sizes,
        node_budget=node_budget,
        context=context,
        workers=workers,
    )
    plan = optimizer.best_plan(transfer_constraint_bytes)
    strategy = optimizer.materialize(plan)
    strategy.validate(transfer_constraint_bytes)
    _flush_context(context)
    return strategy
