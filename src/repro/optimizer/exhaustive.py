"""Brute-force strategy oracle for small networks.

Enumerates every contiguous grouping and, within each group, every
combination of per-layer algorithm and parallelism, evaluating exactly
the same cost model as the real optimizer.  Exponential — usable only on
networks of a handful of layers — but it certifies that Algorithm 1 +
Algorithm 2 return the true optimum (the tests rely on this).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.errors import OptimizationError
from repro.arch.fusion import enumerate_groupings
from repro.hardware.device import FPGADevice
from repro.nn.network import Network
from repro.perf.cost import CostModel, EvalContext
from repro.perf.group import compose_group
from repro.perf.implement import (
    Algorithm,
    WINOGRAD_M,
    candidate_algorithms,
    candidate_parallelisms,
    candidate_weight_modes,
    candidate_winograd_tiles,
)
from repro.optimizer.strategy import Strategy


def _group_options(
    network: Network,
    start: int,
    stop: int,
    device: FPGADevice,
    explore_tile_sizes: bool = False,
    context: Optional[CostModel] = None,
):
    """Every feasible implementation tuple for one fused group."""
    cost = context if context is not None else EvalContext()
    per_layer = []
    for index in range(start, stop):
        info = network[index]
        layer_options = []
        for algo in candidate_algorithms(info):
            if algo == Algorithm.WINOGRAD:
                tiles = candidate_winograd_tiles(info, explore_tile_sizes)
            else:
                tiles = [WINOGRAD_M]
            for m in tiles:
                for mode in candidate_weight_modes(info, algo, device, m):
                    for p in candidate_parallelisms(info, algo, device):
                        layer_options.append(
                            cost.implement(
                                info, algo, p, device,
                                weight_mode=mode, winograd_m=m,
                            )
                        )
        per_layer.append(layer_options)
    for combo in itertools.product(*per_layer):
        design = compose_group(combo, device)
        if design.resources.fits(device.resources):
            yield design


def best_group_design(
    network: Network,
    start: int,
    stop: int,
    device: FPGADevice,
    explore_tile_sizes: bool = False,
    context: Optional[CostModel] = None,
):
    """Exhaustive equivalent of Algorithm 2's fusion[start][stop-1]."""
    best = None
    for design in _group_options(
        network, start, stop, device, explore_tile_sizes, context
    ):
        if best is None or design.latency_cycles < best.latency_cycles:
            best = design
    return best


def exhaustive_optimize(
    network: Network,
    device: FPGADevice,
    transfer_constraint_bytes: int,
    max_parallelism_options: Optional[int] = None,
    context: Optional[CostModel] = None,
) -> Strategy:
    """Exhaustive equivalent of the full optimizer (Problem 1).

    Args:
        max_parallelism_options: Unused hook kept for call-compatibility
            with older tests; the full candidate ladder is always used so
            the oracle matches the real optimizer's search space.
        context: Shared evaluation layer; one is created (and shared
            across all enumerated groupings) when omitted.
    """
    n = len(network)
    if n == 0:
        raise OptimizationError("cannot optimize an empty network")
    cost = context if context is not None else EvalContext()
    best_latency = None
    best: Optional[Tuple[List[Tuple[int, int]], list]] = None
    for grouping in enumerate_groupings(n, device.max_fusion_depth):
        designs = []
        feasible = True
        transfer = 0
        latency = 0
        for start, stop in grouping:
            design = best_group_design(network, start, stop, device, context=cost)
            if design is None:
                feasible = False
                break
            designs.append(design)
            transfer += design.feature_transfer_bytes
            latency += design.latency_cycles
        if not feasible or transfer > transfer_constraint_bytes:
            continue
        if best_latency is None or latency < best_latency:
            best_latency = latency
            best = (grouping, designs)
    if best is None:
        raise OptimizationError(
            f"no strategy fits transfer constraint {transfer_constraint_bytes}"
        )
    grouping, designs = best
    return Strategy(network, device, grouping, designs)
