"""Strategy serialization: save and reload optimized strategies.

A strategy search on a large network can take tens of seconds (Section
7.1); persisting the result lets the code generator and simulator be
re-run without re-searching — the same role the paper's "optimal
strategy" file plays between its optimizer and code generator (Figure 4).

The JSON schema matches what :class:`repro.codegen.generator` embeds in
its projects, extended with everything needed to *rebuild* the exact
:class:`~repro.optimizer.strategy.Strategy`: per-layer algorithm,
parallelism, weight mode and Winograd tile.  Loading re-evaluates each
engine through the same cost model (``implement``), so a reloaded
strategy is bit-identical in cost terms — asserted on save.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import OptimizationError
from repro.hardware.device import FPGADevice, get_device
from repro.nn.network import Network
from repro.perf.cost import CostModel, EvalContext
from repro.perf.group import compose_group
from repro.perf.implement import Algorithm, WeightMode, WINOGRAD_M
from repro.optimizer.strategy import Strategy

SCHEMA_VERSION = 1


def strategy_to_dict(strategy: Strategy) -> dict:
    """The JSON-serializable description of a strategy."""
    return {
        "schema_version": SCHEMA_VERSION,
        "network": strategy.network.name,
        "device": strategy.device.name,
        "latency_cycles": strategy.latency_cycles,
        "feature_transfer_bytes": strategy.feature_transfer_bytes,
        "groups": [
            {
                "range": [start, stop],
                "layers": [
                    {
                        "name": impl.layer_name,
                        "algorithm": impl.algorithm.value,
                        "parallelism": impl.parallelism,
                        "weight_mode": impl.weight_mode.value
                        if impl.weight_mode is not None
                        else WeightMode.RESIDENT.value,
                        "winograd_m": impl.winograd_m or WINOGRAD_M,
                    }
                    for impl in design.implementations
                ],
            }
            for (start, stop), design in zip(strategy.boundaries, strategy.designs)
        ],
    }


def save_strategy(strategy: Strategy, path: Union[str, Path]) -> Path:
    """Write a strategy description to ``path`` (JSON)."""
    path = Path(path)
    path.write_text(json.dumps(strategy_to_dict(strategy), indent=2) + "\n")
    return path


def strategy_from_dict(
    payload: dict,
    network: Network,
    device: Union[str, FPGADevice, None] = None,
    context: Optional[CostModel] = None,
) -> Strategy:
    """Rebuild a strategy by re-evaluating every recorded choice.

    Args:
        payload: A dict produced by :func:`strategy_to_dict`.
        network: The network the strategy was optimized for (must match
            the recorded layer names).
        device: Target device; defaults to the recorded catalog name.
        context: Shared evaluation layer for the re-evaluation (the
            drift check); sharing one across many loads amortizes the
            cost-model calls for shape-identical layers.

    Raises:
        OptimizationError: On schema/network mismatches.
    """
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise OptimizationError(
            f"unsupported strategy schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if device is None:
        device = payload["device"]
    if isinstance(device, str):
        device = get_device(device)
    cost = context if context is not None else EvalContext()

    boundaries: List[Tuple[int, int]] = []
    designs = []
    for group in payload.get("groups", []):
        start, stop = group["range"]
        boundaries.append((start, stop))
        impls = []
        for index, entry in zip(range(start, stop), group["layers"]):
            info = network[index]
            if info.name != entry["name"]:
                raise OptimizationError(
                    f"layer {index} is {info.name!r} in the network but "
                    f"{entry['name']!r} in the strategy file"
                )
            impls.append(
                cost.implement(
                    info,
                    Algorithm(entry["algorithm"]),
                    entry["parallelism"],
                    device,
                    weight_mode=WeightMode(entry["weight_mode"]),
                    winograd_m=entry.get("winograd_m", WINOGRAD_M),
                )
            )
        designs.append(compose_group(impls, device))
    strategy = Strategy(network, device, boundaries, designs)
    recorded = payload.get("latency_cycles")
    if recorded is not None and recorded != strategy.latency_cycles:
        raise OptimizationError(
            f"reloaded strategy latency {strategy.latency_cycles} != recorded "
            f"{recorded}: cost model or network changed since it was saved"
        )
    return strategy


def load_strategy(
    path: Union[str, Path],
    network: Network,
    device: Union[str, FPGADevice, None] = None,
    context: Optional[CostModel] = None,
) -> Strategy:
    """Read a strategy JSON file and rebuild the Strategy."""
    payload = json.loads(Path(path).read_text())
    return strategy_from_dict(payload, network, device, context=context)
