"""Strategy serialization: save and reload optimized strategies.

A strategy search on a large network can take tens of seconds (Section
7.1); persisting the result lets the code generator and simulator be
re-run without re-searching — the same role the paper's "optimal
strategy" file plays between its optimizer and code generator (Figure 4).

Strategies travel in the unified artifact envelope
(:mod:`repro.check.artifacts`): a versioned, checksummed wrapper around
the payload dict :func:`strategy_to_dict` produces, written atomically.
Pre-envelope files (bare payloads from PR <= 4) still load through the
envelope's legacy migration path.  Loading re-evaluates each engine
through the same cost model (``implement``), so a reloaded strategy is
bit-identical in cost terms — drift raises a precise
:class:`~repro.errors.ArtifactMismatchError`, and any structural damage
raises an :class:`~repro.errors.ArtifactError` subclass carrying an
error code and the JSON path of the offending field.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.check.artifacts import (
    E_DEVICE,
    E_DRIFT,
    E_FIELD_VALUE,
    E_NETWORK,
    device_digest,
    load_envelope,
    network_digest,
    require,
    save_artifact,
)
from repro.errors import (
    ArtifactMismatchError,
    ArtifactSchemaError,
    ArtifactVersionError,
    ResourceError,
)
from repro.hardware.device import FPGADevice, get_device
from repro.nn.network import Network
from repro.perf.cost import CostModel, EvalContext
from repro.perf.group import compose_group
from repro.perf.implement import Algorithm, WeightMode, WINOGRAD_M
from repro.optimizer.strategy import Strategy

#: Version of the strategy *payload* (the envelope has its own version).
SCHEMA_VERSION = 1

#: Artifact kind recorded in the envelope.
ARTIFACT_KIND = "strategy"


def strategy_to_dict(strategy: Strategy) -> dict:
    """The JSON-serializable description of a strategy."""
    return {
        "schema_version": SCHEMA_VERSION,
        "network": strategy.network.name,
        "device": strategy.device.name,
        "latency_cycles": strategy.latency_cycles,
        "feature_transfer_bytes": strategy.feature_transfer_bytes,
        "groups": [
            {
                "range": [start, stop],
                "layers": [
                    {
                        "name": impl.layer_name,
                        "algorithm": impl.algorithm.value,
                        "parallelism": impl.parallelism,
                        "weight_mode": impl.weight_mode.value
                        if impl.weight_mode is not None
                        else WeightMode.RESIDENT.value,
                        "winograd_m": impl.winograd_m or WINOGRAD_M,
                    }
                    for impl in design.implementations
                ],
            }
            for (start, stop), design in zip(strategy.boundaries, strategy.designs)
        ],
    }


def strategy_digests(strategy: Strategy) -> dict:
    """Envelope digests binding a strategy to its network and device."""
    return {
        "network": network_digest(strategy.network),
        "device": device_digest(strategy.device),
    }


def save_strategy(strategy: Strategy, path: Union[str, Path]) -> Path:
    """Atomically write a strategy artifact (envelope + payload JSON)."""
    return save_artifact(
        path,
        ARTIFACT_KIND,
        strategy_to_dict(strategy),
        digests=strategy_digests(strategy),
    )


def _parse_enum(entry, key: str, enum_cls, path: str):
    """Read an enum-valued payload field with a precise error."""
    raw = require(entry, key, str, path)
    try:
        return enum_cls(raw)
    except ValueError:
        options = ", ".join(member.value for member in enum_cls)
        raise ArtifactSchemaError(
            E_FIELD_VALUE,
            f"{path}.{key}",
            f"{raw!r} is not one of: {options}",
        ) from None


def strategy_from_dict(
    payload: dict,
    network: Network,
    device: Union[str, FPGADevice, None] = None,
    context: Optional[CostModel] = None,
    path: str = "$",
) -> Strategy:
    """Rebuild a strategy by re-evaluating every recorded choice.

    Args:
        payload: A dict produced by :func:`strategy_to_dict`.
        network: The network the strategy was optimized for (must match
            the recorded layer names).
        device: Target device; defaults to the recorded catalog name.
        context: Shared evaluation layer for the re-evaluation (the
            drift check); sharing one across many loads amortizes the
            cost-model calls for shape-identical layers.
        path: JSON path prefix for error reporting (a plan's stage
            strategies live at ``$.stages[i].strategy``).

    Raises:
        ArtifactError: On any schema, value, or drift problem, with an
            error code and the JSON path of the offending field.
    """
    version = require(payload, "schema_version", int, path)
    if version != SCHEMA_VERSION:
        raise ArtifactVersionError(
            "E_VERSION",
            f"{path}.schema_version",
            f"unsupported strategy schema version {version!r} "
            f"(expected {SCHEMA_VERSION})",
        )
    if device is None:
        device = require(payload, "device", str, path)
    if isinstance(device, str):
        try:
            device = get_device(device)
        except ResourceError as exc:
            raise ArtifactMismatchError(
                E_DEVICE, f"{path}.device", str(exc)
            ) from None
    cost = context if context is not None else EvalContext()

    boundaries: List[Tuple[int, int]] = []
    designs = []
    groups = require(payload, "groups", list, path)
    for group_index, group in enumerate(groups):
        group_path = f"{path}.groups[{group_index}]"
        span = require(group, "range", list, group_path)
        if len(span) != 2 or not all(isinstance(v, int) for v in span):
            raise ArtifactSchemaError(
                E_FIELD_VALUE,
                f"{group_path}.range",
                f"expected [start, stop] integers, found {span!r}",
            )
        start, stop = span
        if not 0 <= start < stop <= len(network):
            raise ArtifactSchemaError(
                E_FIELD_VALUE,
                f"{group_path}.range",
                f"[{start}, {stop}] out of range for a "
                f"{len(network)}-layer network",
            )
        boundaries.append((start, stop))
        layers = require(group, "layers", list, group_path)
        if len(layers) != stop - start:
            raise ArtifactSchemaError(
                E_FIELD_VALUE,
                f"{group_path}.layers",
                f"group covers {stop - start} layers but records "
                f"{len(layers)}",
            )
        impls = []
        for offset, entry in enumerate(layers):
            layer_path = f"{group_path}.layers[{offset}]"
            index = start + offset
            info = network[index]
            name = require(entry, "name", str, layer_path)
            if info.name != name:
                raise ArtifactMismatchError(
                    E_NETWORK,
                    f"{layer_path}.name",
                    f"layer {index} is {info.name!r} in the network but "
                    f"{name!r} in the strategy file",
                )
            algorithm = _parse_enum(entry, "algorithm", Algorithm, layer_path)
            weight_mode = (
                _parse_enum(entry, "weight_mode", WeightMode, layer_path)
                if "weight_mode" in entry
                else WeightMode.RESIDENT
            )
            winograd_m = (
                require(entry, "winograd_m", int, layer_path)
                if "winograd_m" in entry
                else WINOGRAD_M
            )
            impls.append(
                cost.implement(
                    info,
                    algorithm,
                    require(entry, "parallelism", int, layer_path),
                    device,
                    weight_mode=weight_mode,
                    winograd_m=winograd_m,
                )
            )
        designs.append(compose_group(impls, device))
    strategy = Strategy(network, device, boundaries, designs)
    recorded = payload.get("latency_cycles")
    if recorded is not None and recorded != strategy.latency_cycles:
        raise ArtifactMismatchError(
            E_DRIFT,
            f"{path}.latency_cycles",
            f"reloaded strategy latency {strategy.latency_cycles} != recorded "
            f"{recorded}: cost model or network changed since it was saved",
        )
    return strategy


def load_strategy(
    path: Union[str, Path],
    network: Network,
    device: Union[str, FPGADevice, None] = None,
    context: Optional[CostModel] = None,
) -> Strategy:
    """Read a strategy artifact and rebuild the Strategy.

    Accepts both current envelope files and pre-envelope bare payloads
    (which migrate transparently).  When the envelope carries a network
    digest it is checked against ``network`` before any re-evaluation.
    """
    envelope = load_envelope(path, expected_kind=ARTIFACT_KIND)
    envelope.expect_digest("network", network_digest(network), "network")
    if isinstance(device, FPGADevice):
        envelope.expect_digest("device", device_digest(device), "device")
    return strategy_from_dict(
        envelope.payload, network, device, context=context, path="$.payload"
    )


def read_strategy_payload(path: Union[str, Path]) -> dict:
    """Validated payload dict of a strategy artifact (no re-evaluation)."""
    return load_envelope(path, expected_kind=ARTIFACT_KIND).payload


__all__ = [
    "ARTIFACT_KIND",
    "SCHEMA_VERSION",
    "load_strategy",
    "read_strategy_payload",
    "save_strategy",
    "strategy_digests",
    "strategy_from_dict",
    "strategy_to_dict",
]
