"""Algorithm 1: dynamic programming over (layer range, transfer budget).

``L(i, j, t)`` is the minimal latency of layers ``i..j`` given feature-map
transfer budget ``t``: either fuse the whole range (cost ``fusion[i][j]``
from Algorithm 2, needing transfer ``min_t[i][j]``), or split at some
``k`` with a budget split ``x`` (paper's recursion).  The paper quantizes
``t`` in 10 KB units and bounds fusion depth at 8 layers.

Two equivalent solvers are provided:

* :func:`optimize_tabular` — the literal triple-loop recurrence of the
  paper's Algorithm 1, O(N^3 T^2) over quantized budgets, with the
  ``k_mark`` / ``t_mark`` backtracking tables.  Faithful, but the unit
  count T can make it slow for multi-MB budgets in Python.
* :func:`optimize` — an exact Pareto-frontier reformulation: for every
  range keep the set of non-dominated (transfer, latency) partitions;
  answering a query is a frontier lookup.  Produces the same optimum
  (the tests cross-check the two) and runs in milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import OptimizationError
from repro.arch.fusion import group_min_transfer_bytes
from repro.hardware.device import FPGADevice
from repro.nn.network import Network
from repro.optimizer.branch_and_bound import GroupSearch
from repro.optimizer.strategy import Strategy
from repro.perf.cost import CostModel, EvalContext

#: The paper's transfer-budget quantum: "we define the unit of transfer
#: constraint as 10 KB".
TRANSFER_UNIT_BYTES = 10 * 1024

_INF = float("inf")


def transfer_units(transfer_bytes: int, unit: int = TRANSFER_UNIT_BYTES) -> int:
    """Bytes -> whole transfer units (rounded up)."""
    if transfer_bytes < 0:
        raise OptimizationError("transfer must be non-negative")
    return math.ceil(transfer_bytes / unit)


# ---------------------------------------------------------------------------
# Pareto-frontier solver (default)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Plan:
    """A partition of a layer range with its cost."""

    transfer_bytes: int
    latency_cycles: int
    groups: Tuple[Tuple[int, int], ...]


def _prune(plans: List[_Plan]) -> List[_Plan]:
    """Keep only non-dominated (transfer, latency) points."""
    plans.sort(key=lambda p: (p.transfer_bytes, p.latency_cycles))
    kept: List[_Plan] = []
    best_latency = _INF
    for plan in plans:
        if plan.latency_cycles < best_latency:
            kept.append(plan)
            best_latency = plan.latency_cycles
    return kept


class FrontierOptimizer:
    """Exact (transfer, latency) Pareto frontiers for every layer range."""

    def __init__(
        self,
        network: Network,
        device: FPGADevice,
        algorithm_filter=None,
        explore_tile_sizes: bool = False,
        node_budget: int = 250_000,
        context: Optional[CostModel] = None,
        workers: Optional[int] = None,
    ):
        """Args:
            context: Shared signature-keyed evaluation layer (created
                privately when omitted); pass one to share
                ``implement()`` results and telemetry across sweeps.
            workers: When > 1, the independent ``fusion[i][j]`` group
                searches are precomputed by a thread pool before the
                first frontier query (safe: the context is the only
                shared state).  The chosen strategies are identical to
                the sequential search.
        """
        if len(network) == 0:
            raise OptimizationError("cannot optimize an empty network")
        self.network = network
        self.device = device
        self.context: CostModel = context if context is not None else EvalContext()
        self.workers = workers
        self.search = GroupSearch(
            network,
            device,
            algorithm_filter=algorithm_filter,
            explore_tile_sizes=explore_tile_sizes,
            node_budget=node_budget,
            context=self.context,
        )
        self._frontiers: Dict[Tuple[int, int], List[_Plan]] = {}
        self._prewarmed = False

    @property
    def telemetry(self):
        """Search telemetry accumulated in the shared context."""
        return self.context.stats

    def frontier(self, start: int, stop: int) -> List[_Plan]:
        """Non-dominated plans for layers ``[start, stop)``."""
        if self.workers is not None and self.workers > 1 and not self._prewarmed:
            self._prewarmed = True
            self.search.precompute(workers=self.workers)
        key = (start, stop)
        cached = self._frontiers.get(key)
        if cached is not None:
            return cached
        plans: List[_Plan] = []
        design = self.search.fusion(start, stop)
        if design is not None:
            plans.append(
                _Plan(
                    transfer_bytes=design.feature_transfer_bytes,
                    latency_cycles=design.latency_cycles,
                    groups=((start, stop),),
                )
            )
        for split in range(start + 1, stop):
            for left in self.frontier(start, split):
                for right in self.frontier(split, stop):
                    plans.append(
                        _Plan(
                            transfer_bytes=left.transfer_bytes + right.transfer_bytes,
                            latency_cycles=left.latency_cycles
                            + right.latency_cycles,
                            groups=left.groups + right.groups,
                        )
                    )
        pruned = _prune(plans)
        self._frontiers[key] = pruned
        return pruned

    def best_plan(self, transfer_constraint_bytes: int) -> _Plan:
        """Cheapest plan whose feature-map transfer fits the constraint."""
        feasible = [
            plan
            for plan in self.frontier(0, len(self.network))
            if plan.transfer_bytes <= transfer_constraint_bytes
        ]
        if not feasible:
            minimum = min(
                (p.transfer_bytes for p in self.frontier(0, len(self.network))),
                default=None,
            )
            hint = (
                f"; the minimum achievable is {minimum} bytes"
                if minimum is not None
                else "; no feasible design fits the device at all"
            )
            raise OptimizationError(
                f"no strategy fits transfer constraint "
                f"{transfer_constraint_bytes} bytes{hint}"
            )
        return min(feasible, key=lambda p: p.latency_cycles)

    def materialize(self, plan: _Plan) -> Strategy:
        """Turn a plan into a full Strategy with group designs."""
        designs = []
        for start, stop in plan.groups:
            design = self.search.fusion(start, stop)
            if design is None:
                raise OptimizationError(
                    f"group [{start}:{stop}] became infeasible on materialize"
                )
            designs.append(design)
        return Strategy(
            self.network,
            self.device,
            list(plan.groups),
            designs,
            telemetry=self.telemetry,
        )


def _store_context(
    context: Optional[CostModel], store
) -> Optional[CostModel]:
    """Resolve the (context, store) pair callers may mix and match."""
    if store is None:
        return context
    if context is not None:
        raise OptimizationError(
            "pass either a shared context or a store, not both "
            "(give the store to EvalContext instead)"
        )
    from repro.dse.store import resolve_store

    return EvalContext(store=resolve_store(store))


def _flush_context(context: Optional[CostModel]) -> None:
    """Persist any store-backed context's fresh evaluations."""
    flush = getattr(context, "flush_store", None)
    if flush is not None:
        flush()


def optimize(
    network: Network,
    device: FPGADevice,
    transfer_constraint_bytes: int,
    explore_tile_sizes: bool = False,
    node_budget: int = 250_000,
    context: Optional[CostModel] = None,
    workers: Optional[int] = None,
    store=None,
) -> Strategy:
    """Problem 1: minimal-latency strategy under a transfer constraint.

    Args:
        explore_tile_sizes: Also search Winograd tile sizes (extension;
            the paper uses uniform F(4x4, 3x3)).
        node_budget: Per-group branch-and-bound node cap (see
            :class:`~repro.optimizer.branch_and_bound.GroupSearch`);
            lower it for a faster, near-optimal search on deep networks.
        context: Shared :class:`~repro.perf.cost.EvalContext`; pass one
            to reuse ``implement()`` results across calls (e.g. a DSE
            sweep) and to collect telemetry externally.
        workers: Precompute the independent ``fusion[i][j]`` searches
            with a thread pool of this size (strategy-preserving).
        store: Persistent cost store (a :class:`repro.dse.CostStore` or
            its root path) to warm the search from and flush fresh
            evaluations to; mutually exclusive with ``context`` (attach
            the store to your own ``EvalContext`` for that).  The
            resulting strategy is bit-identical to a store-less run.
    """
    context = _store_context(context, store)
    optimizer = FrontierOptimizer(
        network, device, explore_tile_sizes=explore_tile_sizes,
        node_budget=node_budget, context=context, workers=workers,
    )
    plan = optimizer.best_plan(transfer_constraint_bytes)
    strategy = optimizer.materialize(plan)
    strategy.validate(transfer_constraint_bytes)
    _flush_context(context)
    return strategy


def optimize_many(
    network: Network,
    device: FPGADevice,
    transfer_constraints_bytes: Sequence[int],
    explore_tile_sizes: bool = False,
    node_budget: int = 250_000,
    context: Optional[CostModel] = None,
    workers: Optional[int] = None,
    store=None,
) -> List[Strategy]:
    """Optimize under several transfer constraints, sharing the search.

    Equivalent to calling :func:`optimize` per constraint — with the
    same ``explore_tile_sizes``/``node_budget``/``store`` knobs
    honored — but amortizes the Algorithm-2 ``fusion[i][j]`` table and
    the signature-keyed evaluation cache across all of them; this is
    how the Figure 5 sweep is produced.
    """
    context = _store_context(context, store)
    optimizer = FrontierOptimizer(
        network, device, explore_tile_sizes=explore_tile_sizes,
        node_budget=node_budget, context=context, workers=workers,
    )
    strategies = []
    for constraint in transfer_constraints_bytes:
        plan = optimizer.best_plan(constraint)
        strategy = optimizer.materialize(plan)
        strategy.validate(constraint)
        strategies.append(strategy)
    _flush_context(context)
    return strategies


def minimum_transfer_bytes(
    network: Network,
    device: FPGADevice,
    context: Optional[CostModel] = None,
) -> int:
    """Smallest feature-map transfer any feasible strategy achieves."""
    optimizer = FrontierOptimizer(network, device, context=context)
    frontier = optimizer.frontier(0, len(network))
    if not frontier:
        raise OptimizationError("no feasible design fits the device")
    return min(plan.transfer_bytes for plan in frontier)


def transfer_latency_frontier(
    network: Network,
    device: FPGADevice,
    context: Optional[CostModel] = None,
) -> List[Tuple[int, int]]:
    """The exact (transfer bytes, latency cycles) trade-off curve."""
    optimizer = FrontierOptimizer(network, device, context=context)
    return [
        (plan.transfer_bytes, plan.latency_cycles)
        for plan in optimizer.frontier(0, len(network))
    ]


# ---------------------------------------------------------------------------
# Literal tabular Algorithm 1
# ---------------------------------------------------------------------------


def optimize_tabular(
    network: Network,
    device: FPGADevice,
    transfer_constraint_bytes: int,
    unit_bytes: int = TRANSFER_UNIT_BYTES,
    context: Optional[CostModel] = None,
) -> Strategy:
    """The paper's Algorithm 1, verbatim structure.

    Builds ``L[i][j][t]`` bottom-up over quantized transfer budgets with
    ``k_mark``/``t_mark`` backtracking, then materializes the strategy
    and regenerates each group's implementation details (Algorithm 1,
    lines 22-24).  Complexity O(N^3 T^2): keep ``unit_bytes`` coarse or
    budgets small; :func:`optimize` is the fast equivalent.
    """
    n = len(network)
    if n == 0:
        raise OptimizationError("cannot optimize an empty network")
    t_units = transfer_units(transfer_constraint_bytes, unit_bytes) + 1
    search = GroupSearch(network, device, context=context)

    # fusion[i][j] and min_t[i][j] (inclusive j), as in the paper.
    fusion: List[List[Optional[float]]] = [[None] * n for _ in range(n)]
    min_t: List[List[int]] = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i, n):
            design = search.fusion(i, j + 1)
            fusion[i][j] = design.latency_cycles if design is not None else None
            min_t[i][j] = transfer_units(
                group_min_transfer_bytes(network, i, j + 1, device.element_bytes),
                unit_bytes,
            )

    # L[i][j][t], k_mark, t_mark.  j outer ascending, i descending, as in
    # the paper's loop nest.
    L = [[[_INF] * t_units for _ in range(n)] for _ in range(n)]
    k_mark = [[[-1] * t_units for _ in range(n)] for _ in range(n)]
    t_mark = [[[-1] * t_units for _ in range(n)] for _ in range(n)]
    for j in range(n):
        for i in range(j, -1, -1):
            for t in range(t_units):
                if t < min_t[i][j]:
                    continue  # L stays infinity
                fused = fusion[i][j]
                min_latency = fused if fused is not None else _INF
                k_flag, t_flag = j, t
                for k in range(i, j):
                    # Both halves must at least afford their minimal
                    # transfers (paper line 11).
                    if t < min_t[i][k] + min_t[k + 1][j]:
                        continue
                    for x in range(min_t[i][k], t - min_t[k + 1][j] + 1):
                        candidate = L[i][k][x] + L[k + 1][j][t - x]
                        if candidate < min_latency:
                            min_latency = candidate
                            k_flag, t_flag = k, x
                L[i][j][t] = min_latency
                k_mark[i][j][t] = k_flag
                t_mark[i][j][t] = t_flag

    final = L[0][n - 1][t_units - 1]
    if final == _INF:
        raise OptimizationError(
            f"no strategy fits transfer constraint {transfer_constraint_bytes} "
            f"bytes on {device.name}"
        )

    # Backtrack the fused structure (Algorithm 1, line 22).
    boundaries: List[Tuple[int, int]] = []

    def backtrack(i: int, j: int, t: int) -> None:
        k = k_mark[i][j][t]
        if k == j:
            boundaries.append((i, j + 1))
            return
        x = t_mark[i][j][t]
        backtrack(i, k, x)
        backtrack(k + 1, j, t - x)

    backtrack(0, n - 1, t_units - 1)
    boundaries.sort()
    designs = []
    for start, stop in boundaries:
        design = search.fusion(start, stop)
        if design is None:
            raise OptimizationError("backtracked group is infeasible")
        designs.append(design)
    return Strategy(
        network, device, boundaries, designs,
        telemetry=search.context.stats,
    )
