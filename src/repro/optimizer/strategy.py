"""Strategy intermediate representation (paper Definition 1).

"For layer i, its implementation strategy is a triple C_i = <g_i, algo_i,
p_i> ... a strategy for an N-layer network is defined as a set
S = {C_i | 1 <= i <= N}".  A :class:`Strategy` bundles those triples with
the evaluated :class:`~repro.perf.group.GroupDesign` of every fusion
group, giving total latency, transfer and per-group resource usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import OptimizationError, ResourceError
from repro.hardware.device import FPGADevice
from repro.hardware.resources import ResourceVector
from repro.nn.layers import ConvLayer
from repro.nn.network import Network
from repro.perf.cost import SearchTelemetry
from repro.perf.group import GroupDesign
from repro.perf.implement import Algorithm


@dataclass(frozen=True)
class LayerChoice:
    """The paper's C_i triple for one layer."""

    layer_name: str
    group_id: int
    algorithm: Algorithm
    parallelism: int


class Strategy:
    """A complete fusion + algorithm + parallelism assignment.

    Groups execute sequentially on the device, so each group must fit the
    device's resources on its own; latencies add and DRAM traffic adds.
    """

    def __init__(
        self,
        network: Network,
        device: FPGADevice,
        boundaries: Sequence[Tuple[int, int]],
        designs: Sequence[GroupDesign],
        telemetry: Optional[SearchTelemetry] = None,
    ):
        if len(boundaries) != len(designs):
            raise OptimizationError("one design required per group")
        if not boundaries:
            raise OptimizationError("a strategy needs at least one group")
        expected = 0
        for (start, stop), design in zip(boundaries, designs):
            if start != expected:
                raise OptimizationError(
                    f"groups must tile the network contiguously; got start "
                    f"{start}, expected {expected}"
                )
            if stop - start != len(design.implementations):
                raise OptimizationError(
                    f"group [{start}:{stop}] has {stop - start} layers but "
                    f"{len(design.implementations)} implementations"
                )
            expected = stop
        if expected != len(network):
            raise OptimizationError(
                f"groups cover {expected} layers, network has {len(network)}"
            )
        self.network = network
        self.device = device
        self.boundaries = list(boundaries)
        self.designs = list(designs)
        #: Telemetry of the search that produced this strategy (None for
        #: hand-assembled strategies); see
        #: :class:`repro.perf.cost.SearchTelemetry`.
        self.telemetry = telemetry

    # -- aggregate metrics ----------------------------------------------------

    @property
    def latency_cycles(self) -> int:
        """End-to-end latency: fusion groups run back-to-back."""
        return sum(design.latency_cycles for design in self.designs)

    def latency_seconds(self) -> float:
        return self.device.cycles_to_seconds(self.latency_cycles)

    @property
    def feature_transfer_bytes(self) -> int:
        """Total DRAM feature-map traffic (bounded by the paper's T)."""
        return sum(design.feature_transfer_bytes for design in self.designs)

    @property
    def weight_transfer_bytes(self) -> int:
        return sum(design.weight_transfer_bytes for design in self.designs)

    @property
    def total_ops(self) -> int:
        return sum(design.ops for design in self.designs)

    def effective_gops(self) -> float:
        """The paper's "effective performance": total ops / total latency."""
        seconds = self.latency_seconds()
        return self.total_ops / seconds / 1e9 if seconds > 0 else 0.0

    @property
    def peak_resources(self) -> ResourceVector:
        """Element-wise max over groups (what the device must provide)."""
        peak = ResourceVector()
        for design in self.designs:
            peak = ResourceVector(
                bram18k=max(peak.bram18k, design.resources.bram18k),
                dsp=max(peak.dsp, design.resources.dsp),
                ff=max(peak.ff, design.resources.ff),
                lut=max(peak.lut, design.resources.lut),
            )
        return peak

    def choices(self) -> List[LayerChoice]:
        """The per-layer C_i triples."""
        result: List[LayerChoice] = []
        for group_id, design in enumerate(self.designs):
            for impl in design.implementations:
                result.append(
                    LayerChoice(
                        layer_name=impl.layer_name,
                        group_id=group_id,
                        algorithm=impl.algorithm,
                        parallelism=impl.parallelism,
                    )
                )
        return result

    def validate(self, transfer_constraint_bytes: int = None) -> None:
        """Check device fit per group and the optional transfer bound.

        Raises:
            ResourceError: If any group exceeds the device resources.
            OptimizationError: If the transfer constraint is violated.
        """
        for (start, stop), design in zip(self.boundaries, self.designs):
            if not design.resources.fits(self.device.resources):
                raise ResourceError(
                    f"group [{start}:{stop}] needs {design.resources}, device "
                    f"{self.device.name} provides {self.device.resources}"
                )
            conv_depth = sum(
                1
                for i in range(start, stop)
                if isinstance(self.network[i].layer, ConvLayer)
            )
            if conv_depth > self.device.max_fusion_depth:
                raise ResourceError(
                    f"group [{start}:{stop}] has {conv_depth} conv engines, "
                    f"max fusion depth is {self.device.max_fusion_depth}"
                )
        if (
            transfer_constraint_bytes is not None
            and self.feature_transfer_bytes > transfer_constraint_bytes
        ):
            raise OptimizationError(
                f"strategy transfers {self.feature_transfer_bytes} feature-map "
                f"bytes, constraint is {transfer_constraint_bytes}"
            )

    def breakdown(self) -> List[dict]:
        """Per-group latency decomposition.

        Each entry reports where the group's cycles go: the compute
        bottleneck, the shared DRAM transfer, and the pipeline fill —
        with the binding term named.  Useful for understanding *why* the
        optimizer chose a structure (compute-bound groups want Winograd
        and DSPs; bandwidth-bound ones want fusion and resident weights).
        """
        result = []
        for (start, stop), design in zip(self.boundaries, self.designs):
            latency = max(design.latency_cycles, 1)
            result.append(
                {
                    "range": (start, stop),
                    "latency_cycles": design.latency_cycles,
                    "compute_cycles": design.compute_cycles,
                    "transfer_cycles": design.transfer_cycles,
                    "fill_cycles": design.fill_cycles,
                    "bottleneck": design.bottleneck,
                    "fill_share": design.fill_cycles / latency,
                }
            )
        return result

    def report(self) -> str:
        """Table 2-style per-layer report."""
        lines = [
            f"Strategy for {self.network.name} on {self.device.name}: "
            f"{len(self.designs)} fusion group(s), "
            f"latency {self.latency_cycles:,} cycles "
            f"({self.latency_seconds() * 1e3:.2f} ms), "
            f"{self.effective_gops():.1f} effective GOPS"
        ]
        header = (
            f"{'layer':<12} {'grp':>3} {'algorithm':<12} {'par':>5} "
            f"{'BRAM':>6} {'DSP':>5} {'FF':>8} {'LUT':>8} {'Mcycles':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for group_id, design in enumerate(self.designs):
            for impl in design.implementations:
                r = impl.resources
                lines.append(
                    f"{impl.layer_name:<12} {group_id:>3} "
                    f"{impl.algorithm.value:<12} {impl.parallelism:>5} "
                    f"{r.bram18k:>6} {r.dsp:>5} {r.ff:>8} {r.lut:>8} "
                    f"{impl.compute_cycles / 1e6:>8.2f}"
                )
        peak = self.peak_resources
        util = peak.utilization(self.device.resources)
        lines.append("-" * len(header))
        lines.append(
            f"{'peak':<12} {'':>3} {'':<12} {'':>5} {peak.bram18k:>6} "
            f"{peak.dsp:>5} {peak.ff:>8} {peak.lut:>8}"
        )
        lines.append(
            "utilization  "
            + "  ".join(f"{k}={v * 100:.1f}%" for k, v in util.items())
        )
        lines.append(
            f"feature-map transfer: {self.feature_transfer_bytes / 2**20:.2f} MB, "
            f"weight transfer: {self.weight_transfer_bytes / 2**20:.2f} MB"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Strategy(groups={len(self.designs)}, "
            f"latency={self.latency_cycles}, "
            f"transfer={self.feature_transfer_bytes})"
        )
