"""Project-level HLS code generation.

Walks an optimized :class:`~repro.optimizer.strategy.Strategy`, renders
one engine per layer from the templates, wraps every fusion group in its
DATAFLOW top function, and writes the whole HLS project (sources, host
stub, Tcl build script, strategy report) to a directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.check.artifacts import (
    atomic_write_text,
    device_digest,
    network_digest,
    wrap_payload,
)
from repro.errors import CodegenError
from repro.codegen import templates
from repro.optimizer.strategy import Strategy

#: Envelope kind of the strategy blob embedded in generated projects.
CODEGEN_ARTIFACT_KIND = "codegen_strategy"

#: FPGA part numbers for the device catalog entries.
PART_NUMBERS = {
    "zc706": "xc7z045ffg900-2",
    "vc707": "xc7vx485tffg1761-2",
    "zcu102": "xczu9eg-ffvb1156-2-e",
    "testchip": "xc7z010clg400-1",
}


@dataclass(frozen=True)
class GeneratedProject:
    """Paths and contents of a generated HLS project."""

    project_name: str
    files: Dict[str, str]

    def source_names(self) -> List[str]:
        return sorted(self.files)

    def write_to(self, directory: Path) -> List[Path]:
        """Write every file under ``directory``; returns written paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for name, content in sorted(self.files.items()):
            path = directory / name
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, content)
            written.append(path)
        return written


class CodeGenerator:
    """Renders a Strategy into an HLS project.

    Args:
        strategy: The optimized strategy to realize.
        project_name: Defaults to ``<network>_accel``.
        weights: Optional trained parameters (the
            :func:`repro.nn.functional.init_weights` layout); when given,
            quantized weight headers — Winograd kernels pre-transformed —
            are emitted alongside the sources.
    """

    def __init__(
        self,
        strategy: Strategy,
        project_name: Optional[str] = None,
        weights: Optional[dict] = None,
    ):
        self.strategy = strategy
        self.project_name = project_name or f"{strategy.network.name}_accel"
        self.weights = weights

    def generate(self) -> GeneratedProject:
        strategy = self.strategy
        network = strategy.network
        files: Dict[str, str] = {}
        files["common.h"] = templates.header_prelude(self.project_name)

        sources: List[str] = ["common.h"]
        for group_id, ((start, stop), design) in enumerate(
            zip(strategy.boundaries, strategy.designs)
        ):
            infos = [network[i] for i in range(start, stop)]
            impls = list(design.implementations)
            body_parts = ['#include "common.h"', ""]
            for info, impl in zip(infos, impls):
                body_parts.append(templates.render_layer(info, impl))
            body_parts.append(templates.group_top(group_id, infos, impls))
            filename = f"group{group_id}.cpp"
            files[filename] = "\n".join(body_parts)
            sources.append(filename)

        if self.weights is not None:
            from repro.codegen.weights import strategy_weight_headers

            files.update(strategy_weight_headers(strategy, self.weights))
        files["host.cpp"] = templates.host_stub(
            self.project_name, len(strategy.designs)
        )
        part = PART_NUMBERS.get(strategy.device.name)
        if part is None:
            raise CodegenError(
                f"no part number known for device {strategy.device.name!r}"
            )
        files["build.tcl"] = templates.build_script(self.project_name, sources, part)
        files["strategy_report.txt"] = strategy.report() + "\n"
        files["strategy.json"] = self._strategy_json()
        return GeneratedProject(project_name=self.project_name, files=files)

    def _strategy_json(self) -> str:
        strategy = self.strategy
        payload = {
            "network": strategy.network.name,
            "device": strategy.device.name,
            "latency_cycles": strategy.latency_cycles,
            "feature_transfer_bytes": strategy.feature_transfer_bytes,
            "weight_transfer_bytes": strategy.weight_transfer_bytes,
            "groups": [
                {
                    "range": [start, stop],
                    "layers": [
                        {
                            "name": impl.layer_name,
                            "algorithm": impl.algorithm.value,
                            "parallelism": impl.parallelism,
                            "bram18k": impl.resources.bram18k,
                            "dsp": impl.resources.dsp,
                            "ff": impl.resources.ff,
                            "lut": impl.resources.lut,
                            "compute_cycles": impl.compute_cycles,
                        }
                        for impl in design.implementations
                    ],
                }
                for (start, stop), design in zip(
                    strategy.boundaries, strategy.designs
                )
            ],
        }
        document = wrap_payload(
            CODEGEN_ARTIFACT_KIND,
            payload,
            digests={
                "network": network_digest(strategy.network),
                "device": device_digest(strategy.device),
            },
        )
        return json.dumps(document, indent=2) + "\n"


def generate_project(
    strategy: Strategy,
    output_dir: Optional[Path] = None,
    project_name: Optional[str] = None,
    weights: Optional[dict] = None,
) -> GeneratedProject:
    """Generate (and optionally write) the HLS project for a strategy."""
    project = CodeGenerator(strategy, project_name, weights=weights).generate()
    if output_dir is not None:
        project.write_to(Path(output_dir))
    return project
