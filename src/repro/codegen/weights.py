"""Weight initialization files for the generated HLS project.

The tool-flow's last input is the trained model: kernels must land in
the on-chip arrays (or DRAM images) the engine templates read.  This
module renders them as C header files:

* 16-bit fixed-point codes (the board datapath, `Q16` by default),
* **pre-transformed** into the Winograd domain (``G g G^T``) for layers
  the strategy implements with the Winograd algorithm — the same
  offline transform the cost model charges the ``alpha^2/r^2`` storage
  inflation for.

Output is one header per layer plus an index header, all hex-encoded
``int16_t`` arrays with shape comments, so the result compiles under
any C toolchain.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import CodegenError
from repro.algorithms.fixed_point import FixedPointFormat, Q16
from repro.algorithms.winograd import winograd_transform
from repro.nn.layers import ConvLayer
from repro.nn.modules import InceptionModule
from repro.optimizer.strategy import Strategy
from repro.perf.implement import Algorithm, WINOGRAD_M


def _identifier(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "l_" + cleaned
    return cleaned


def _array_lines(codes: np.ndarray, per_line: int = 12) -> List[str]:
    flat = codes.reshape(-1)
    lines = []
    for start in range(0, flat.size, per_line):
        chunk = flat[start : start + per_line]
        lines.append(
            "    " + ", ".join(f"0x{int(v) & 0xFFFF:04x}" for v in chunk) + ","
        )
    return lines


def render_weight_array(
    name: str, values: np.ndarray, fmt: FixedPointFormat = Q16
) -> str:
    """One ``static const int16_t`` array with a shape comment."""
    codes = fmt.to_integers(values)
    shape = "x".join(str(d) for d in values.shape)
    body = "\n".join(_array_lines(codes))
    return (
        f"// shape {shape}, Q{fmt.integer_bits}.{fmt.frac_bits} fixed point\n"
        f"static const int16_t {name}[{codes.size}] = {{\n{body}\n}};\n"
    )


def layer_weight_header(
    layer: ConvLayer,
    params: Dict[str, np.ndarray],
    algorithm: Algorithm,
    fmt: FixedPointFormat = Q16,
    winograd_m: int = WINOGRAD_M,
) -> str:
    """Header for one conv layer's kernels (+bias).

    Winograd layers get kernels pre-transformed to ``alpha x alpha``.
    """
    weight = np.asarray(params["weight"])
    bias = params.get("bias")
    name = _identifier(layer.name)
    if algorithm == Algorithm.WINOGRAD:
        transform = winograd_transform(winograd_m, layer.kernel)
        weight = transform.transform_kernels(weight)
        tag = f"winograd F({winograd_m},{layer.kernel}) pre-transformed"
    elif algorithm == Algorithm.CONVENTIONAL:
        tag = "conventional"
    else:
        raise CodegenError(f"layer {layer.name!r}: no weights for {algorithm}")
    parts = [
        f"// kernels for layer {layer.name} ({tag})",
        render_weight_array(f"{name}_weights", weight, fmt),
    ]
    if bias is not None:
        parts.append(render_weight_array(f"{name}_bias", np.asarray(bias), fmt))
    return "\n".join(parts)


def strategy_weight_headers(
    strategy: Strategy,
    weights: Dict[str, Dict[str, np.ndarray]],
    fmt: FixedPointFormat = Q16,
) -> Dict[str, str]:
    """All weight headers for a strategy, keyed by file name.

    Inception modules emit one header per inner conv (conventional form
    — the macro engine is conventional).

    Raises:
        CodegenError: If a conv layer has no weights in the dict.
    """
    files: Dict[str, str] = {}
    entries: List[str] = []
    for design in strategy.designs:
        for impl in design.implementations:
            info = strategy.network.layer(impl.layer_name)
            layer = info.layer
            if isinstance(layer, ConvLayer):
                params = weights.get(layer.name)
                if params is None:
                    raise CodegenError(f"no weights for conv layer {layer.name!r}")
                filename = f"weights_{_identifier(layer.name)}.h"
                files[filename] = layer_weight_header(
                    layer,
                    params,
                    impl.algorithm,
                    fmt,
                    impl.winograd_m or WINOGRAD_M,
                )
                entries.append(filename)
            elif isinstance(layer, InceptionModule):
                for inner, _shape in layer.inner_layers(info.input_shape):
                    if not isinstance(inner, ConvLayer):
                        continue
                    params = weights.get(inner.name)
                    if params is None:
                        raise CodegenError(
                            f"no weights for module conv {inner.name!r}"
                        )
                    filename = f"weights_{_identifier(inner.name)}.h"
                    files[filename] = layer_weight_header(
                        inner, params, Algorithm.CONVENTIONAL, fmt
                    )
                    entries.append(filename)
    index = "\n".join(f'#include "{entry}"' for entry in entries)
    files["weights.h"] = (
        "// Auto-generated weight index for the accelerator\n" + index + "\n"
    )
    return files
