"""HLS code generation (paper Section 6).

Given an optimal strategy, emit Vivado-HLS C++ using per-layer templates
(conventional convolution, Winograd convolution, pooling, LRN), wrap each
fusion group in a top function carrying the DATAFLOW directive with FIFO
stream channels, and produce the host stub and build script.  Vivado
itself is unavailable here; the output is structurally complete C++ whose
properties (pragmas, channel wiring, parameterization) are unit-tested.
"""

from repro.codegen.generator import CodeGenerator, generate_project
from repro.codegen import templates

__all__ = ["CodeGenerator", "generate_project", "templates"]
