"""Roofline performance model (paper Figure 1, after Williams et al.).

Relates attainable performance to the computation-to-communication (CTC)
ratio: ``attainable = min(computational_roof, ctc * bandwidth)``.  The
module reproduces the paper's motivation figure: the conventional design
A sits under its computational roof, the Winograd design B is clipped by
the bandwidth roof well below its ideal point B', and fusing layers moves
the design to a higher CTC ratio C where the Winograd roof is usable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ShapeError
from repro.hardware.device import FPGADevice


def ctc_ratio(ops: float, transfer_bytes: float) -> float:
    """Computation-to-communication ratio in OP / byte.

    The paper plots GOP/GByte which is numerically identical.
    """
    if transfer_bytes <= 0:
        raise ShapeError("transfer must be positive for a CTC ratio")
    return ops / transfer_bytes


def bandwidth_roof_gops(ctc: float, device: FPGADevice) -> float:
    """Bandwidth-limited performance at a given CTC ratio (GOPS)."""
    return ctc * device.bandwidth_bytes_per_s / 1e9


def attainable_performance(ctc: float, computational_roof_gops: float, device: FPGADevice) -> float:
    """min(computational roof, bandwidth roof) in GOPS."""
    return min(computational_roof_gops, bandwidth_roof_gops(ctc, device))


@dataclass(frozen=True)
class RooflinePoint:
    """One design point on the roofline plot.

    Attributes:
        label: Point name (e.g. "A", "B", "B'", "C").
        ctc: Computation-to-communication ratio (OP/byte).
        computational_roof_gops: The algorithm's compute roof.
        attainable_gops: Performance after both roofs are applied.
        bandwidth_bound: True when the bandwidth roof is the binding one.
    """

    label: str
    ctc: float
    computational_roof_gops: float
    attainable_gops: float
    bandwidth_bound: bool

    @property
    def wasted_compute_gops(self) -> float:
        """Compute capability lost to bandwidth saturation (B vs B')."""
        return self.computational_roof_gops - self.attainable_gops


def make_point(
    label: str, ops: float, transfer_bytes: float, computational_roof_gops: float, device: FPGADevice
) -> RooflinePoint:
    """Build a roofline point from raw workload numbers."""
    ctc = ctc_ratio(ops, transfer_bytes)
    bw = bandwidth_roof_gops(ctc, device)
    attainable = min(computational_roof_gops, bw)
    return RooflinePoint(
        label=label,
        ctc=ctc,
        computational_roof_gops=computational_roof_gops,
        attainable_gops=attainable,
        bandwidth_bound=bw < computational_roof_gops,
    )


def render_ascii(points: List[RooflinePoint], device: FPGADevice, width: int = 60) -> str:
    """A small text rendering of the roofline plot for reports."""
    if not points:
        return "(no points)"
    lines = [
        f"Roofline on {device.name}: bandwidth {device.bandwidth_bytes_per_s / 1e9:.1f} GB/s"
    ]
    max_perf = max(p.computational_roof_gops for p in points)
    for point in sorted(points, key=lambda p: p.ctc):
        bar = int(width * point.attainable_gops / max_perf)
        roof = "bandwidth" if point.bandwidth_bound else "compute"
        lines.append(
            f"  {point.label:<3} ctc={point.ctc:8.1f} OP/B "
            f"|{'#' * bar:<{width}}| {point.attainable_gops:8.1f} GOPS ({roof}-bound)"
        )
    return "\n".join(lines)
