"""FPGA device catalog.

"The specification of the target FPGA includes Block RAMs (BRAMs), DSPs,
off-chip bandwidth and others" (paper S3).  The two devices the paper
uses are included with their public datasheet numbers:

* **zc706** — Xilinx Zynq-7000 ZC706 board (XC7Z045), the evaluation
  platform: 900 DSP48E, 1090 BRAM18K, 437k FF, 218k LUT, 1 GB DDR3 at a
  quoted 4.2 GB/s peak, run at 100 MHz with 16-bit fixed data.
* **vc707** — Virtex-7 XC7VX485T, used for the Figure 1 roofline
  motivation with a 4.5 GB/s bandwidth roof.

Two larger boards extend the catalog beyond the paper so heterogeneous
fleets (:mod:`repro.partition`) and device-space exploration have real
targets:

* **zcu102** — Zynq UltraScale+ ZU9EG evaluation board (datasheet
  fabric numbers, DDR4 at a nominal 19.2 GB/s, 200 MHz).
* **vc709** — Virtex-7 XC7VX690T connectivity board (2940 BRAM18K,
  3600 DSP48E; dual DDR3 SODIMMs taken at a conservative 12.8 GB/s
  sustained, run at 150 MHz).

A deliberately tiny ``testchip`` device keeps unit tests fast and makes
resource-exhaustion paths easy to exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ResourceError
from repro.hardware.resources import ResourceVector


@dataclass(frozen=True)
class FPGADevice:
    """A target FPGA platform.

    Attributes:
        name: Catalog key.
        resources: Total usable fabric resources.
        bandwidth_bytes_per_s: Peak off-chip memory bandwidth.
        frequency_hz: Accelerator clock.
        element_bytes: Datapath word size (paper: 16-bit fixed = 2 bytes).
        dsp_per_mac: DSP48E slices per 16-bit multiply-accumulate (1 for
            16-bit operands on 7-series).
        max_fusion_depth: Upper bound on layers per fusion group ("we
            employ 8 as an upper bound ... due to memory ports
            limitation", paper S7.1).
    """

    name: str
    resources: ResourceVector
    bandwidth_bytes_per_s: float
    frequency_hz: float
    element_bytes: int = 2
    dsp_per_mac: int = 1
    max_fusion_depth: int = 8

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ResourceError("bandwidth must be positive")
        if self.frequency_hz <= 0:
            raise ResourceError("frequency must be positive")
        if self.element_bytes <= 0:
            raise ResourceError("element size must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        """Off-chip transfer capability per accelerator clock cycle."""
        return self.bandwidth_bytes_per_s / self.frequency_hz

    @property
    def peak_macs_per_cycle(self) -> int:
        """MACs/cycle if every DSP does one multiply per cycle."""
        return self.resources.dsp // self.dsp_per_mac

    @property
    def conventional_roof_gops(self) -> float:
        """Computational roof of the conventional algorithm (GOPS).

        One MAC = 2 operations; every MAC occupies ``dsp_per_mac`` DSPs.
        """
        return 2 * self.peak_macs_per_cycle * self.frequency_hz / 1e9

    def winograd_roof_gops(self, multiplication_reduction: float) -> float:
        """Computational roof of the Winograd algorithm (GOPS).

        Winograd performs the equivalent convolution work with
        ``multiplication_reduction`` fewer DSP multiplications (4.0 for
        F(4x4, 3x3)); transforms are adder/LUT logic, not DSPs.
        """
        return self.conventional_roof_gops * multiplication_reduction

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.frequency_hz

    def with_bandwidth(self, bandwidth_bytes_per_s: float) -> "FPGADevice":
        """Copy of this device with a different off-chip bandwidth."""
        return replace(self, bandwidth_bytes_per_s=bandwidth_bytes_per_s)


DEVICES: Dict[str, FPGADevice] = {
    "zc706": FPGADevice(
        name="zc706",
        resources=ResourceVector(bram18k=1090, dsp=900, ff=437_200, lut=218_600),
        bandwidth_bytes_per_s=4.2e9,
        frequency_hz=100e6,
    ),
    "vc707": FPGADevice(
        name="vc707",
        resources=ResourceVector(bram18k=2060, dsp=2800, ff=607_200, lut=303_600),
        bandwidth_bytes_per_s=4.5e9,
        frequency_hz=100e6,
    ),
    "zcu102": FPGADevice(
        name="zcu102",
        resources=ResourceVector(bram18k=1824, dsp=2520, ff=548_160, lut=274_080),
        bandwidth_bytes_per_s=19.2e9,
        frequency_hz=200e6,
    ),
    "vc709": FPGADevice(
        name="vc709",
        resources=ResourceVector(bram18k=2940, dsp=3600, ff=866_400, lut=433_200),
        bandwidth_bytes_per_s=12.8e9,
        frequency_hz=150e6,
    ),
    "testchip": FPGADevice(
        name="testchip",
        resources=ResourceVector(bram18k=64, dsp=64, ff=32_000, lut=16_000),
        bandwidth_bytes_per_s=0.8e9,
        frequency_hz=100e6,
        max_fusion_depth=4,
    ),
}


def get_device(name: str) -> FPGADevice:
    """Look up a device by catalog name."""
    try:
        return DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(DEVICES))
        raise ResourceError(f"unknown device {name!r}; known devices: {known}") from None
