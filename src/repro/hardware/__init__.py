"""FPGA substrate: devices, resource vectors, roofline and power models.

Models the paper's target hardware — the ZC706 evaluation board
(XC7Z045) and the Virtex-7 485T used in the Figure 1 motivation — at the
level the paper's own optimizer consumes: multi-dimensional resource
vectors (BRAM18K, DSP48E, FF, LUT), off-chip bandwidth, clock frequency,
and a resource-proportional power model for the energy-efficiency
comparisons.
"""

from repro.hardware.resources import ResourceVector
from repro.hardware.device import FPGADevice, get_device, DEVICES
from repro.hardware.roofline import RooflinePoint, attainable_performance
from repro.hardware.power import PowerModel

__all__ = [
    "DEVICES",
    "FPGADevice",
    "PowerModel",
    "ResourceVector",
    "RooflinePoint",
    "attainable_performance",
    "get_device",
]
