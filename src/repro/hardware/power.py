"""Resource-proportional power and energy model.

The paper reports board power (9.4 W scale) and energy-efficiency
(GOPS/W) in Table 1, and claims transfer-energy savings from fusion
(S7.2).  Boards are unavailable here, so we substitute a standard
resource-activity model: static power plus per-resource dynamic
coefficients (values in the range Xilinx's XPE tool gives for 7-series at
100 MHz), plus DDR3 transfer energy per byte.  Absolute watts are
approximate by construction; ratios between designs — which is what the
paper's comparison uses — are driven by the same resource/transfer
quantities the paper's designs differ in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceError
from repro.hardware.device import FPGADevice
from repro.hardware.resources import ResourceVector


@dataclass(frozen=True)
class PowerModel:
    """Per-resource dynamic power coefficients (watts at 100 MHz).

    Attributes:
        static_w: Device static + PS/board overhead power.
        dsp_w: Per active DSP48E slice.
        bram_w: Per active BRAM18K tile.
        lut_w: Per LUT (logic + routing).
        ff_w: Per flip-flop.
        dram_pj_per_byte: DDR3 access energy per byte transferred.
    """

    static_w: float = 1.2
    dsp_w: float = 2.2e-3
    bram_w: float = 3.0e-3
    lut_w: float = 8.0e-6
    ff_w: float = 2.0e-6
    dram_pj_per_byte: float = 70.0

    def fabric_power_w(self, usage: ResourceVector, frequency_hz: float = 100e6) -> float:
        """Static plus dynamic fabric power for a design's resource usage."""
        if frequency_hz <= 0:
            raise ResourceError("frequency must be positive")
        scale = frequency_hz / 100e6
        dynamic = (
            usage.dsp * self.dsp_w
            + usage.bram18k * self.bram_w
            + usage.lut * self.lut_w
            + usage.ff * self.ff_w
        )
        return self.static_w + dynamic * scale

    def transfer_energy_j(self, transfer_bytes: float) -> float:
        """DRAM energy for moving ``transfer_bytes`` off/on chip."""
        if transfer_bytes < 0:
            raise ResourceError("transfer bytes must be non-negative")
        return transfer_bytes * self.dram_pj_per_byte * 1e-12

    def design_energy_j(
        self,
        usage: ResourceVector,
        latency_s: float,
        transfer_bytes: float,
        frequency_hz: float = 100e6,
    ) -> float:
        """Total energy: fabric power x latency + DRAM transfer energy."""
        if latency_s < 0:
            raise ResourceError("latency must be non-negative")
        return (
            self.fabric_power_w(usage, frequency_hz) * latency_s
            + self.transfer_energy_j(transfer_bytes)
        )

    def average_power_w(
        self,
        usage: ResourceVector,
        latency_s: float,
        transfer_bytes: float,
        frequency_hz: float = 100e6,
    ) -> float:
        """Board power averaged over the run (fabric + DRAM)."""
        if latency_s <= 0:
            raise ResourceError("latency must be positive to average power")
        return self.design_energy_j(usage, latency_s, transfer_bytes, frequency_hz) / latency_s

    def strategy_power_w(self, strategy) -> float:
        """Board power while a compiled strategy is executing.

        Fabric static + dynamic at the strategy's peak resource usage and
        its device clock (DRAM transfer energy is accounted separately,
        per inference).
        """
        return self.fabric_power_w(
            strategy.peak_resources, strategy.device.frequency_hz
        )

    def strategy_transfer_bytes(self, strategy) -> float:
        """DRAM bytes one inference moves (feature maps + weights)."""
        return float(
            strategy.feature_transfer_bytes + strategy.weight_transfer_bytes
        )

    def strategy_energy_per_inference_j(self, strategy) -> float:
        """Joules one inference costs on a fully-utilized board.

        Board power (static + dynamic fabric) over the strategy's
        latency, plus the DRAM energy of its feature-map and weight
        traffic.  This is the number ``repro compile --stats`` prints and
        the capacity planner's energy objective builds on — one shared
        definition so the CLI and the planner always agree.
        """
        return self.strategy_power_w(strategy) * strategy.latency_seconds() + (
            self.transfer_energy_j(self.strategy_transfer_bytes(strategy))
        )

    def strategy_dynamic_energy_per_inference_j(self, strategy) -> float:
        """The marginal (static-free) energy of one more inference.

        Dynamic fabric power over the strategy latency plus DRAM
        transfer energy.  The planner charges this per completed request
        and accounts static power separately per board over the serving
        makespan, so idle boards cost energy too.
        """
        dynamic_w = self.strategy_power_w(strategy) - self.static_w
        return dynamic_w * strategy.latency_seconds() + self.transfer_energy_j(
            self.strategy_transfer_bytes(strategy)
        )

    def energy_efficiency_gops_per_w(
        self,
        ops: float,
        usage: ResourceVector,
        latency_s: float,
        transfer_bytes: float,
        frequency_hz: float = 100e6,
    ) -> float:
        """The paper's Table 1 metric: effective GOPS per watt."""
        power = self.average_power_w(usage, latency_s, transfer_bytes, frequency_hz)
        gops = ops / latency_s / 1e9
        return gops / power


def device_power_model(device: FPGADevice) -> PowerModel:
    """Default power model for a device (single calibration for now)."""
    return PowerModel()
