"""Multi-dimensional FPGA resource vectors.

"On FPGAs, resource constraint R is multi-dimensional including BRAMs,
DSP slices and logic cells of the target device" (paper S5).  A
:class:`ResourceVector` carries the four quantities the paper reports
(BRAM18K, DSP48E, FF, LUT) with element-wise arithmetic and a ``fits``
partial order, which is all the branch-and-bound needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.errors import ResourceError

FIELDS = ("bram18k", "dsp", "ff", "lut")


@dataclass(frozen=True)
class ResourceVector:
    """Counts of BRAM18K tiles, DSP48E slices, flip-flops and LUTs."""

    bram18k: int = 0
    dsp: int = 0
    ff: int = 0
    lut: int = 0

    def __post_init__(self) -> None:
        for field in FIELDS:
            value = getattr(self, field)
            if value < 0:
                raise ResourceError(f"{field} must be non-negative, got {value}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.bram18k + other.bram18k,
            self.dsp + other.dsp,
            self.ff + other.ff,
            self.lut + other.lut,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.bram18k - other.bram18k,
            self.dsp - other.dsp,
            self.ff - other.ff,
            self.lut - other.lut,
        )

    def scaled(self, factor: int) -> "ResourceVector":
        """Element-wise integer scaling (replicated engines)."""
        if factor < 0:
            raise ResourceError(f"scale factor must be non-negative, got {factor}")
        return ResourceVector(
            self.bram18k * factor, self.dsp * factor, self.ff * factor, self.lut * factor
        )

    def fits(self, budget: "ResourceVector") -> bool:
        """True if this usage is within ``budget`` in every dimension."""
        return all(
            getattr(self, field) <= getattr(budget, field) for field in FIELDS
        )

    def utilization(self, budget: "ResourceVector") -> Dict[str, float]:
        """Per-dimension fraction of ``budget`` consumed."""
        result = {}
        for field in FIELDS:
            total = getattr(budget, field)
            used = getattr(self, field)
            result[field] = used / total if total else float("inf") if used else 0.0
        return result

    def max_utilization(self, budget: "ResourceVector") -> float:
        """The binding-dimension utilization."""
        return max(self.utilization(budget).values())

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in FIELDS}

    @staticmethod
    def total(parts: Iterable["ResourceVector"]) -> "ResourceVector":
        result = ResourceVector()
        for part in parts:
            result = result + part
        return result

    def __str__(self) -> str:
        return (
            f"BRAM18K={self.bram18k} DSP={self.dsp} FF={self.ff} LUT={self.lut}"
        )
