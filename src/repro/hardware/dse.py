"""Device design-space exploration: sensitivity sweeps.

The roofline motivation (Figure 1) says the interesting constraint
surface is (compute resources x off-chip bandwidth).  This module sweeps
scaled variants of a device through the full optimizer and reports how
the optimal strategy responds — which direction the design is actually
starved in, and where extra bandwidth stops paying (the point fusion is
engineered to move).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.errors import OptimizationError
from repro.hardware.device import FPGADevice
from repro.hardware.resources import ResourceVector
from repro.nn.network import Network
from repro.optimizer.dp import optimize
from repro.optimizer.strategy import Strategy
from repro.perf.cost import EvalContext
from repro.perf.implement import Algorithm


@dataclass(frozen=True)
class SweepPoint:
    """One device variant and the optimal strategy found on it."""

    label: str
    device: FPGADevice
    strategy: Strategy

    @property
    def latency_cycles(self) -> int:
        return self.strategy.latency_cycles

    @property
    def effective_gops(self) -> float:
        return self.strategy.effective_gops()

    @property
    def winograd_layers(self) -> int:
        return sum(
            1
            for choice in self.strategy.choices()
            if choice.algorithm == Algorithm.WINOGRAD
        )


def scale_bandwidth(device: FPGADevice, factor: float) -> FPGADevice:
    """Device variant with scaled off-chip bandwidth."""
    if factor <= 0:
        raise OptimizationError("bandwidth factor must be positive")
    return replace(
        device,
        name=f"{device.name}_bw{factor:g}x",
        bandwidth_bytes_per_s=device.bandwidth_bytes_per_s * factor,
    )


def scale_fabric(device: FPGADevice, factor: float) -> FPGADevice:
    """Device variant with scaled fabric resources (all four dimensions)."""
    if factor <= 0:
        raise OptimizationError("fabric factor must be positive")
    r = device.resources
    return replace(
        device,
        name=f"{device.name}_fab{factor:g}x",
        resources=ResourceVector(
            bram18k=max(1, int(r.bram18k * factor)),
            dsp=max(1, int(r.dsp * factor)),
            ff=max(1, int(r.ff * factor)),
            lut=max(1, int(r.lut * factor)),
        ),
    )


def bandwidth_sweep(
    network: Network,
    device: FPGADevice,
    transfer_constraint_bytes: int,
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    store=None,
) -> List[SweepPoint]:
    """Optimal strategies across bandwidth-scaled device variants.

    ``store`` (a :class:`repro.dse.CostStore` or its root path) makes
    the sweep warm from and feed the persistent cost cache, so repeated
    sweeps — and other tools evaluating the same layers — skip the
    engine search entirely.
    """
    # One signature-keyed context serves every variant: bandwidth does
    # not change engine design points, only which ones the search picks,
    # so later sweep points run almost entirely from cache.
    context = EvalContext(store=store)
    points = []
    for factor in factors:
        variant = scale_bandwidth(device, factor)
        strategy = optimize(
            network, variant, transfer_constraint_bytes, context=context
        )
        points.append(
            SweepPoint(label=f"{factor:g}x BW", device=variant, strategy=strategy)
        )
    context.flush_store()
    return points


def fabric_sweep(
    network: Network,
    device: FPGADevice,
    transfer_constraint_bytes: int,
    factors: Sequence[float] = (0.5, 1.0, 2.0),
    store=None,
) -> List[SweepPoint]:
    """Optimal strategies across fabric-scaled device variants."""
    context = EvalContext(store=store)
    points = []
    for factor in factors:
        variant = scale_fabric(device, factor)
        strategy = optimize(
            network, variant, transfer_constraint_bytes, context=context
        )
        points.append(
            SweepPoint(label=f"{factor:g}x fabric", device=variant, strategy=strategy)
        )
    context.flush_store()
    return points


def binding_resource(point: SweepPoint) -> str:
    """Which resource dimension is tightest for the strategy's peak usage."""
    utilization = point.strategy.peak_resources.utilization(
        point.device.resources
    )
    return max(utilization, key=utilization.get)
