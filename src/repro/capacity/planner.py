"""SLO-aware capacity planner: size a shared fleet for several models.

Given per-model traffic (a :mod:`repro.traffic` arrival spec) and SLOs
(p95 latency, goodput floor), the planner searches fleet composition —
device catalog entry x replica count x dynamic-batch cap x scheduler
weights — compiling each model once per candidate device through one
shared evaluation context, replaying the *same* recorded trace against
every candidate with the :class:`MultiTenantScheduler`, and keeping the
cheapest feasible configuration.

"Cheapest" is lexicographic: first **board cost** (a resource-normalized
unit where one zc706 = 1.0, so a zcu102 board honestly costs more than
a zc706), then **energy** — each completed inference is charged its
strategy's dynamic energy (fabric + DRAM traffic, via
:mod:`repro.hardware.power`) and every board pays static power over the
serving makespan, so an oversized fleet that idles still loses on
energy.  The same per-inference energy helper backs ``repro compile
--stats``, so the planner's objective and the CLI always agree.

:func:`plan_per_model_fleets` prices the naive alternative — one
dedicated fleet per model, no sharing — with the identical evaluator
and objective; the benchmark in ``benchmarks/test_capacity.py`` shows
the planner's consolidated fleet beating it.

The chosen plan persists as a ``capacity_plan`` artifact (the standard
envelope of :mod:`repro.check`), so ``repro plan-capacity`` output is
checksummed, diffable, and validated by ``repro check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import CapacityError
from repro.capacity.multitenant import MultiTenantScheduler, Tenant
from repro.hardware.device import FPGADevice, get_device
from repro.hardware.power import device_power_model
from repro.traffic import (
    REFERENCE_FREQUENCY_HZ,
    TrafficTrace,
    describe_arrival,
    parse_arrival,
)

#: Envelope kind of persisted capacity plans.
PLAN_KIND = "capacity_plan"

#: Board-cost weighting of the resource classes (sums to 1.0; one zc706
#: is the unit board).
_COST_WEIGHTS = (("dsp", 0.5), ("bram18k", 0.3), ("lut", 0.2))
_ZC706_BASE = {"dsp": 900, "bram18k": 1090, "lut": 218_600}


def board_cost_units(device: Union[str, FPGADevice]) -> float:
    """Relative cost of one board, normalized so a zc706 costs 1.0.

    A weighted sum of the board's DSP / BRAM / LUT capacity relative to
    the zc706 — the planner's stand-in for price, so "fewest boards"
    cannot be gamed by picking the largest device in the catalog.
    """
    target = get_device(device) if isinstance(device, str) else device
    return sum(
        weight * getattr(target.resources, name) / _ZC706_BASE[name]
        for name, weight in _COST_WEIGHTS
    )


@dataclass(frozen=True)
class TenantDemand:
    """One model's traffic and service-level objective.

    Attributes:
        name: Tenant name (unique within a plan).
        model: Prototxt path/text or an in-memory Network.
        arrival: Arrival spec at the 100 MHz reference clock (see
            :func:`repro.traffic.parse_arrival`), e.g.
            ``"diurnal:mean=9000,period=2e6,depth=0.8"``.
        num_requests: Trace length for this tenant.
        slo_latency_s: p95 end-to-end latency bound, in seconds.
        min_goodput_rps: Completed-requests-per-second floor.
        weight: Fixed scheduler weight; None lets the planner search.
        priority / min_share: Strict-priority knobs (used when the
            plan's sharing discipline is ``strict_priority``).
    """

    name: str
    model: object
    arrival: str
    num_requests: int = 200
    slo_latency_s: Optional[float] = None
    min_goodput_rps: Optional[float] = None
    weight: Optional[float] = None
    priority: int = 0
    min_share: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise CapacityError("a tenant demand needs a non-empty name")
        if self.num_requests < 1:
            raise CapacityError(
                f"demand {self.name!r} needs >= 1 request, "
                f"got {self.num_requests}"
            )
        if self.slo_latency_s is not None and self.slo_latency_s <= 0:
            raise CapacityError(
                f"demand {self.name!r} slo_latency_s must be positive"
            )
        if self.min_goodput_rps is not None and self.min_goodput_rps <= 0:
            raise CapacityError(
                f"demand {self.name!r} min_goodput_rps must be positive"
            )
        # Fail fast on a malformed arrival spec, with the traffic
        # grammar's own error message.
        parse_arrival(self.arrival)

    def spec_payload(self) -> dict:
        return {
            "name": self.name,
            "arrival": describe_arrival(parse_arrival(self.arrival)),
            "num_requests": self.num_requests,
            "slo_latency_s": self.slo_latency_s,
            "min_goodput_rps": self.min_goodput_rps,
            "weight": self.weight,
            "priority": self.priority,
            "min_share": self.min_share,
        }


@dataclass(frozen=True)
class CapacityPlan:
    """The planner's chosen fleet and the evidence it meets the SLOs."""

    device: str
    replicas: int
    max_batch: int
    policy: str
    sharing: str
    weights: Dict[str, float]
    weight_rule: str  # "explicit" | "uniform" | "work_proportional"
    board_cost: float  # board_cost_units(device) * replicas
    energy_j: float
    makespan_seconds: float
    swaps: int
    swap_cycles: float
    tenant_metrics: Dict[str, dict]  # ServingMetrics.to_dict() per tenant
    demands: Tuple[dict, ...]  # TenantDemand.spec_payload() per tenant
    seed: int
    trace_digest: str
    candidates: int  # configurations evaluated
    feasible: int  # configurations that met every SLO

    def to_payload(self) -> dict:
        return {
            "device": self.device,
            "replicas": self.replicas,
            "max_batch": self.max_batch,
            "policy": self.policy,
            "sharing": self.sharing,
            "weights": dict(self.weights),
            "weight_rule": self.weight_rule,
            "board_cost": self.board_cost,
            "energy_j": self.energy_j,
            "makespan_seconds": self.makespan_seconds,
            "swaps": self.swaps,
            "swap_cycles": self.swap_cycles,
            "tenant_metrics": {
                name: dict(metrics)
                for name, metrics in self.tenant_metrics.items()
            },
            "demands": [dict(d) for d in self.demands],
            "seed": self.seed,
            "trace_digest": self.trace_digest,
            "candidates": self.candidates,
            "feasible": self.feasible,
        }

    def save(self, path: Union[str, Path]) -> Path:
        from repro.check.artifacts import save_artifact

        return save_artifact(path, PLAN_KIND, self.to_payload())

    def summary(self) -> str:
        lines = [
            f"capacity plan: {self.replicas}x {self.device} "
            f"(board cost {self.board_cost:.2f} units), "
            f"max_batch {self.max_batch}, {self.sharing} "
            f"[{self.weight_rule} weights], policy {self.policy}",
            f"energy {self.energy_j:.3f} J over "
            f"{self.makespan_seconds * 1e3:.2f} ms "
            f"({self.swaps} warm swaps, {self.swap_cycles:,.0f} cycles); "
            f"{self.feasible}/{self.candidates} candidates feasible "
            f"(seed {self.seed}, trace {self.trace_digest[:12]})",
        ]
        frequency_hz = get_device(self.device).frequency_hz
        for demand in self.demands:
            name = demand["name"]
            metrics = self.tenant_metrics[name]
            slo = demand.get("slo_latency_s")
            p95_s = (metrics["p95_latency_cycles"] or 0.0) / frequency_hz
            line = (
                f"  [{name}] weight {self.weights[name]:g}: "
                f"{metrics['requests']} served, "
                f"goodput {metrics['goodput_per_second']:,.1f} req/s, "
                f"p95 {p95_s * 1e3:.3f} ms"
            )
            if slo is not None:
                line += f" (SLO {slo * 1e3:.3f} ms)"
            if demand.get("min_goodput_rps") is not None:
                line += f" (goodput floor {demand['min_goodput_rps']:,.1f})"
            lines.append(line)
        return "\n".join(lines)


def load_capacity_plan(path: Union[str, Path]) -> CapacityPlan:
    """Load a persisted plan, every failure a typed ArtifactError."""
    from repro.check.artifacts import E_FIELD_VALUE, load_envelope, require
    from repro.errors import ArtifactSchemaError

    envelope = load_envelope(path, expected_kind=PLAN_KIND)
    payload = envelope.payload
    device = require(payload, "device", str)
    replicas = require(payload, "replicas", int)
    if replicas < 1:
        raise ArtifactSchemaError(
            E_FIELD_VALUE, "$.replicas", f"must be >= 1, got {replicas}"
        )
    return CapacityPlan(
        device=device,
        replicas=replicas,
        max_batch=require(payload, "max_batch", int),
        policy=require(payload, "policy", str),
        sharing=require(payload, "sharing", str),
        weights=dict(require(payload, "weights", dict)),
        weight_rule=require(payload, "weight_rule", str),
        board_cost=float(require(payload, "board_cost", (int, float))),
        energy_j=float(require(payload, "energy_j", (int, float))),
        makespan_seconds=float(
            require(payload, "makespan_seconds", (int, float))
        ),
        swaps=require(payload, "swaps", int),
        swap_cycles=float(require(payload, "swap_cycles", (int, float))),
        tenant_metrics=dict(require(payload, "tenant_metrics", dict)),
        demands=tuple(require(payload, "demands", list)),
        seed=require(payload, "seed", int),
        trace_digest=require(payload, "trace_digest", str),
        candidates=require(payload, "candidates", int),
        feasible=require(payload, "feasible", int),
    )


@dataclass(frozen=True)
class PerModelBaseline:
    """The naive alternative: one dedicated fleet per model."""

    fleets: Dict[str, dict]  # per model: device/replicas/max_batch/metrics
    board_cost: float
    energy_j: float

    def summary(self) -> str:
        lines = [
            f"per-model baseline: board cost {self.board_cost:.2f} units, "
            f"energy {self.energy_j:.3f} J"
        ]
        for name, fleet in self.fleets.items():
            lines.append(
                f"  [{name}] {fleet['replicas']}x {fleet['device']} "
                f"max_batch {fleet['max_batch']}: "
                f"goodput {fleet['metrics']['goodput_per_second']:,.1f} req/s"
            )
        return "\n".join(lines)


@dataclass
class _Candidate:
    """One evaluated fleet configuration."""

    device: FPGADevice
    replicas: int
    max_batch: int
    weight_rule: str
    weights: Dict[str, float]
    feasible: bool
    board_cost: float
    energy_j: float
    result: object  # MultiTenantResult


def _fleet_energy_j(
    strategies: Mapping[str, object],
    result,
    replicas: int,
    power_model,
) -> float:
    """The plan's energy objective over one serving run.

    Each completed inference pays its strategy's *dynamic* energy
    (fabric switching + DRAM traffic); static board power accrues on
    every replica over the whole makespan — idle capacity is not free.
    """
    energy = 0.0
    for name, strategy in strategies.items():
        per_inference = power_model.strategy_dynamic_energy_per_inference_j(
            strategy
        )
        energy += per_inference * result.per_tenant[name].metrics.requests
    energy += power_model.static_w * replicas * result.makespan_seconds
    return energy


def _weight_options(
    demands: Sequence[TenantDemand],
    strategies: Mapping[str, object],
) -> List[Tuple[str, Dict[str, float]]]:
    """The scheduler-weight configurations a candidate device tries.

    Explicit weights win outright; otherwise the planner tries uniform
    sharing and work-proportional sharing (weight ~ offered requests x
    single-image latency, i.e. each tenant's share matches the compute
    it actually demands).
    """
    if all(d.weight is not None for d in demands):
        return [("explicit", {d.name: float(d.weight) for d in demands})]
    uniform = {d.name: 1.0 for d in demands}
    work = {}
    for demand in demands:
        process = parse_arrival(demand.arrival)
        rate = 1.0 / max(process.mean_interarrival_cycles(), 1e-9)
        cycles = float(strategies[demand.name].latency_cycles)
        work[demand.name] = max(rate * cycles, 1e-9)
    floor = min(work.values())
    work = {name: value / floor for name, value in work.items()}
    options = [("uniform", uniform)]
    if any(abs(value - 1.0) > 1e-9 for value in work.values()):
        options.append(("work_proportional", work))
    return options


def _evaluate_candidate(
    demands: Sequence[TenantDemand],
    strategies: Mapping[str, object],
    trace: TrafficTrace,
    device: FPGADevice,
    replicas: int,
    max_batch: int,
    weight_rule: str,
    weights: Mapping[str, float],
    policy: str,
    sharing: str,
    faults,
    fault_seed: int,
    power_model,
) -> _Candidate:
    """Replay the recorded trace against one fleet configuration."""
    scale = device.frequency_hz / REFERENCE_FREQUENCY_HZ
    tenants = [
        Tenant.for_strategy(
            demand.name,
            strategies[demand.name],
            weight=weights[demand.name],
            priority=demand.priority,
            min_share=demand.min_share,
            slo_cycles=(
                demand.slo_latency_s * device.frequency_hz
                if demand.slo_latency_s is not None
                else None
            ),
            verify=False,  # strategies are verified once at compile time
        )
        for demand in demands
    ]
    scheduler = MultiTenantScheduler(
        tenants,
        replicas=replicas,
        policy=policy,
        sharing=sharing,
        max_batch=max_batch,
        faults=faults,
        fault_seed=fault_seed,
    )
    result = scheduler.run_trace(trace, scale=scale)
    feasible = True
    for demand in demands:
        metrics = result.per_tenant[demand.name].metrics
        if metrics.offered != metrics.requests:
            feasible = False  # shed or failed requests: not serving the load
        if demand.slo_latency_s is not None:
            slo_cycles = demand.slo_latency_s * device.frequency_hz
            if not metrics.p95_latency_cycles <= slo_cycles:
                feasible = False
        if demand.min_goodput_rps is not None:
            if not metrics.goodput_per_second >= demand.min_goodput_rps:
                feasible = False
    return _Candidate(
        device=device,
        replicas=replicas,
        max_batch=max_batch,
        weight_rule=weight_rule,
        weights=dict(weights),
        feasible=feasible,
        board_cost=board_cost_units(device) * replicas,
        energy_j=_fleet_energy_j(strategies, result, replicas, power_model),
        result=result,
    )


def _compile_demands(
    demands: Sequence[TenantDemand],
    device: FPGADevice,
    transfer_constraint_bytes: Optional[int],
    context,
    verify: bool,
) -> Dict[str, object]:
    """Compile every demand's model for one device, sharing the context."""
    from repro.toolflow import compile_model

    strategies: Dict[str, object] = {}
    for demand in demands:
        compiled = compile_model(
            demand.model,
            device=device,
            transfer_constraint_bytes=transfer_constraint_bytes,
            context=context,
            verify=verify,
        )
        if not hasattr(compiled, "project"):
            raise CapacityError(
                f"demand {demand.name!r} resolved to a branching graph; "
                "capacity planning currently serves linear models "
                "(flatten the graph first, see docs/ir.md)"
            )
        strategies[demand.name] = compiled.strategy
    return strategies


def plan_capacity(
    demands: Sequence[TenantDemand],
    devices: Sequence[str] = ("zc706",),
    max_replicas: int = 4,
    batch_sizes: Sequence[int] = (1, 4, 8),
    policy: str = "least_loaded",
    sharing: str = "weighted_fair",
    seed: int = 0,
    faults=None,
    fault_seed: int = 0,
    transfer_constraint_bytes: Optional[int] = None,
    context=None,
    store=None,
    verify: bool = True,
    log=None,
) -> CapacityPlan:
    """Search fleet configurations for the cheapest one meeting every SLO.

    Args:
        demands: One :class:`TenantDemand` per model.
        devices: Device catalog names to consider (each candidate fleet
            is homogeneous — replicas of one device).
        max_replicas: Largest replica count to try per device.
        batch_sizes: Dynamic-batch caps to try.
        policy / sharing: Scheduler knobs (fixed, not searched).
        seed: Traffic seed; the same seed replays the identical trace
            against every candidate *and* in any later re-plan.
        faults / fault_seed: Optional chaos schedule to stress-test
            candidates under (see :mod:`repro.faults`) — the plan then
            guarantees SLOs under that disturbance, not just in fair
            weather.
        transfer_constraint_bytes: The paper's T, forwarded to compiles.
        context / store: Shared cost-evaluation context / persistent
            cost store — every model x device compile in the search
            reuses one context (see :mod:`repro.dse`).
        verify: Run invariant validators on each compiled strategy.
        log: Optional ``print``-like progress callback.

    Returns:
        The cheapest feasible :class:`CapacityPlan` (board cost, then
        energy).

    Raises:
        CapacityError: No candidate met every SLO — the message says how
            many configurations were tried; raise ``max_replicas`` or
            relax the SLOs.
    """
    if not demands:
        raise CapacityError("capacity planning needs >= 1 tenant demand")
    names = [d.name for d in demands]
    if len(set(names)) != len(names):
        raise CapacityError(f"duplicate demand names: {names}")
    if not devices:
        raise CapacityError("capacity planning needs >= 1 candidate device")
    if max_replicas < 1:
        raise CapacityError(f"max_replicas must be >= 1, got {max_replicas}")
    if not batch_sizes:
        raise CapacityError("capacity planning needs >= 1 batch size")
    from repro.optimizer.dp import _flush_context, _store_context

    context = _store_context(context, store)
    trace = TrafficTrace.record(
        {d.name: d.arrival for d in demands},
        num_requests={d.name: d.num_requests for d in demands},
        seed=seed,
    )
    candidates: List[_Candidate] = []
    for device_name in devices:
        device = get_device(device_name)
        power_model = device_power_model(device)
        strategies = _compile_demands(
            demands, device, transfer_constraint_bytes, context, verify
        )
        for rule, weights in _weight_options(demands, strategies):
            for replicas in range(1, max_replicas + 1):
                for max_batch in batch_sizes:
                    candidate = _evaluate_candidate(
                        demands, strategies, trace, device, replicas,
                        max_batch, rule, weights, policy, sharing,
                        faults, fault_seed, power_model,
                    )
                    candidates.append(candidate)
                    if log is not None:
                        status = "ok" if candidate.feasible else "infeasible"
                        log(
                            f"  {replicas}x {device.name} batch {max_batch} "
                            f"[{rule}]: {status}, "
                            f"cost {candidate.board_cost:.2f}, "
                            f"energy {candidate.energy_j:.3f} J"
                        )
    _flush_context(context)
    feasible = [c for c in candidates if c.feasible]
    if not feasible:
        raise CapacityError(
            f"no feasible fleet in {len(candidates)} candidate(s) "
            f"(devices {list(devices)}, up to {max_replicas} replicas, "
            f"batches {list(batch_sizes)}) — raise max_replicas, widen the "
            "device list, or relax the SLOs"
        )
    device_order = {name: i for i, name in enumerate(devices)}
    best = min(
        feasible,
        key=lambda c: (
            c.board_cost,
            c.energy_j,
            device_order[c.device.name],
            c.replicas,
            c.max_batch,
        ),
    )
    result = best.result
    return CapacityPlan(
        device=best.device.name,
        replicas=best.replicas,
        max_batch=best.max_batch,
        policy=policy,
        sharing=sharing,
        weights=best.weights,
        weight_rule=best.weight_rule,
        board_cost=best.board_cost,
        energy_j=best.energy_j,
        makespan_seconds=result.makespan_seconds,
        swaps=result.swaps,
        swap_cycles=result.swap_cycles,
        tenant_metrics={
            name: serving.metrics.to_dict()
            for name, serving in result.per_tenant.items()
        },
        demands=tuple(d.spec_payload() for d in demands),
        seed=seed,
        trace_digest=trace.digest(),
        candidates=len(candidates),
        feasible=len(feasible),
    )


def plan_per_model_fleets(
    demands: Sequence[TenantDemand],
    devices: Sequence[str] = ("zc706",),
    max_replicas: int = 4,
    batch_sizes: Sequence[int] = (1, 4, 8),
    policy: str = "least_loaded",
    seed: int = 0,
    faults=None,
    fault_seed: int = 0,
    transfer_constraint_bytes: Optional[int] = None,
    context=None,
    store=None,
    verify: bool = True,
) -> PerModelBaseline:
    """Price the naive alternative: a dedicated fleet per model.

    Each demand independently gets the cheapest feasible single-tenant
    fleet, judged by the same evaluator and objective as
    :func:`plan_capacity` — the fair baseline the benchmark compares
    the consolidated plan against.

    Raises:
        CapacityError: Some demand has no feasible dedicated fleet.
    """
    if not demands:
        raise CapacityError("capacity planning needs >= 1 tenant demand")
    from repro.optimizer.dp import _flush_context, _store_context

    context = _store_context(context, store)
    # One recording shared with plan_capacity: tenant streams are seeded
    # by position, so each model sees the identical trace either way.
    trace = TrafficTrace.record(
        {d.name: d.arrival for d in demands},
        num_requests={d.name: d.num_requests for d in demands},
        seed=seed,
    )
    compiled: Dict[str, Dict[str, object]] = {}
    for device_name in devices:
        device = get_device(device_name)
        compiled[device_name] = _compile_demands(
            demands, device, transfer_constraint_bytes, context, verify
        )
    _flush_context(context)
    fleets: Dict[str, dict] = {}
    total_cost = 0.0
    total_energy = 0.0
    device_order = {name: i for i, name in enumerate(devices)}
    for index, demand in enumerate(demands):
        solo_trace = TrafficTrace([trace.tenants[index]])
        best: Optional[_Candidate] = None
        tried = 0
        for device_name in devices:
            device = get_device(device_name)
            power_model = device_power_model(device)
            strategies = {demand.name: compiled[device_name][demand.name]}
            for replicas in range(1, max_replicas + 1):
                for max_batch in batch_sizes:
                    candidate = _evaluate_candidate(
                        [demand], strategies, solo_trace, device, replicas,
                        max_batch, "uniform", {demand.name: 1.0}, policy,
                        "weighted_fair", faults, fault_seed, power_model,
                    )
                    tried += 1
                    if not candidate.feasible:
                        continue
                    key = (
                        candidate.board_cost,
                        candidate.energy_j,
                        device_order[device_name],
                        replicas,
                        max_batch,
                    )
                    if best is None or key < best_key:
                        best, best_key = candidate, key
        if best is None:
            raise CapacityError(
                f"no feasible dedicated fleet for {demand.name!r} "
                f"in {tried} candidate(s)"
            )
        metrics = best.result.per_tenant[demand.name].metrics
        fleets[demand.name] = {
            "device": best.device.name,
            "replicas": best.replicas,
            "max_batch": best.max_batch,
            "board_cost": best.board_cost,
            "energy_j": best.energy_j,
            "metrics": metrics.to_dict(),
        }
        total_cost += best.board_cost
        total_energy += best.energy_j
    return PerModelBaseline(
        fleets=fleets, board_cost=total_cost, energy_j=total_energy
    )
