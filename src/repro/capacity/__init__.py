"""Multi-tenant serving and SLO-aware capacity planning.

Two layers on top of the single-model serving simulator
(:mod:`repro.serve`):

* :class:`MultiTenantScheduler` — several compiled models sharing one
  replica fleet, with per-model queues, weighted-fair or
  strict-priority sharing, costed warm swaps of strategy weights, and
  per-model metrics.  A single tenant with default knobs reproduces the
  :class:`~repro.serve.FleetScheduler` bit-for-bit.
* :func:`plan_capacity` — search fleet composition (device x replicas x
  batching x weights) for the cheapest configuration meeting every
  model's latency/goodput SLO, priced in normalized board-cost units
  and joules (:mod:`repro.hardware.power`).

Typical use::

    from repro.capacity import TenantDemand, plan_capacity

    plan = plan_capacity(
        [TenantDemand("vision", "vision.prototxt",
                      "diurnal:mean=9000,period=2e6,depth=0.8",
                      slo_latency_s=0.005),
         TenantDemand("search", "search.prototxt",
                      "poisson:mean=4000", slo_latency_s=0.002)],
        devices=("zc706", "zcu102"), max_replicas=4)
    print(plan.summary())
    plan.save("plan.json")         # capacity_plan artifact, repro check'd

See ``docs/capacity.md`` for the traffic grammar, the planner objective
and a worked two-model example.
"""

from repro.errors import CapacityError
from repro.capacity.multitenant import (
    SHARING_KINDS,
    MultiTenantResult,
    MultiTenantScheduler,
    SharedReplica,
    Tenant,
)
from repro.capacity.planner import (
    PLAN_KIND,
    CapacityPlan,
    PerModelBaseline,
    TenantDemand,
    board_cost_units,
    load_capacity_plan,
    plan_capacity,
    plan_per_model_fleets,
)

__all__ = [
    "PLAN_KIND",
    "SHARING_KINDS",
    "CapacityError",
    "CapacityPlan",
    "MultiTenantResult",
    "MultiTenantScheduler",
    "PerModelBaseline",
    "SharedReplica",
    "Tenant",
    "TenantDemand",
    "board_cost_units",
    "load_capacity_plan",
    "plan_capacity",
    "plan_per_model_fleets",
]
