"""Multi-tenant serving: several compiled models sharing one fleet.

The single-model :class:`~repro.serve.scheduler.FleetScheduler` answers
"how does one design behave under load"; this module answers the fleet
operator's question — *several* models, each with its own traffic and
SLO, contending for the same boards.  Each tenant gets its own dynamic
batcher, retry heap and admission bound; replicas are shared, and a
replica switching tenants pays a **warm-swap** cost (reloading the
strategy's weights over the device's DRAM bandwidth) before the new
batch runs.

Two sharing disciplines decide which tenant dispatches when several
could:

* ``weighted_fair`` — start-time fair queueing on a per-tenant virtual
  time: each dispatched batch advances its tenant's virtual time by the
  occupied cycles divided by the tenant's weight, and the tenant with
  the smallest virtual time goes first.  Long-run throughput is
  proportional to weight under saturating load.
* ``strict_priority`` — higher ``priority`` always dispatches first,
  *except* that a tenant whose served share of replica cycles has
  fallen below its ``min_share`` floor jumps the queue — the starvation
  guard that makes strict priority safe to operate.

Everything runs on the same deterministic virtual clock as the parent
scheduler, and the event loop is a strict generalization: a
**single tenant with default weight reproduces the FleetScheduler's
records and metrics bit-for-bit** (asserted in tests) — the multi-tenant
machinery is provably inert until a second model shows up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heappop, heappush
from itertools import count
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import CapacityError
from repro.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.optimizer.strategy import Strategy
from repro.serve.batcher import DynamicBatcher, InferenceRequest, ServingError
from repro.serve.metrics import RequestRecord, aggregate_metrics
from repro.serve.runtime import BatchAttempt, ReplicaStats
from repro.serve.scheduler import Policy, ServingResult
from repro.sim.simulator import ServiceModel, build_service_model

SHARING_KINDS = ("weighted_fair", "strict_priority")


@dataclass(frozen=True)
class Tenant:
    """One model sharing the fleet: its timing model plus its share knobs.

    Attributes:
        name: Tenant key (unique within a scheduler).
        service_model: Batched timing model of the tenant's compiled
            strategy.
        weight: Weighted-fair share (relative; must be positive).
        priority: Strict-priority rank (higher dispatches first).
        min_share: Starvation floor under ``strict_priority`` — the
            minimum fraction of served replica cycles this tenant may
            fall to before it jumps the queue.  Floors must sum to < 1.
        swap_cycles: Cycles a replica spends reloading this tenant's
            weights when it last served a *different* tenant (the
            initial load of an idle replica is free).
        frequency_hz: Accelerator clock (every tenant of one fleet must
            agree — they share boards).
        ops_per_request: Arithmetic ops one request represents.
        reference_gops: Analytic effective GOPS of one replica.
        slo_cycles: Optional per-tenant latency SLO.
    """

    name: str
    service_model: ServiceModel
    weight: float = 1.0
    priority: int = 0
    min_share: float = 0.0
    swap_cycles: float = 0.0
    frequency_hz: float = 1e6
    ops_per_request: float = 0.0
    reference_gops: float = 0.0
    slo_cycles: Optional[float] = None

    def __post_init__(self):
        if not self.name:
            raise CapacityError("a tenant needs a non-empty name")
        if not self.weight > 0:
            raise CapacityError(
                f"tenant {self.name!r} weight must be positive, "
                f"got {self.weight}"
            )
        if not 0.0 <= self.min_share < 1.0:
            raise CapacityError(
                f"tenant {self.name!r} min_share must be in [0, 1), "
                f"got {self.min_share}"
            )
        if self.swap_cycles < 0:
            raise CapacityError(
                f"tenant {self.name!r} swap_cycles must be >= 0, "
                f"got {self.swap_cycles}"
            )
        if self.slo_cycles is not None and self.slo_cycles <= 0:
            raise CapacityError(
                f"tenant {self.name!r} slo_cycles must be positive, "
                f"got {self.slo_cycles}"
            )

    @classmethod
    def for_strategy(
        cls,
        name: str,
        strategy: Strategy,
        weight: float = 1.0,
        priority: int = 0,
        min_share: float = 0.0,
        swap_cycles: Optional[float] = None,
        slo_cycles: Optional[float] = None,
        verify: bool = True,
    ) -> "Tenant":
        """Build a tenant serving ``strategy``.

        ``swap_cycles`` defaults to the time the strategy's weights take
        to stream over the device's DRAM bandwidth — the physical cost
        of reprogramming a warm replica with this model.
        """
        if verify:
            from repro.check.invariants import verify_strategy

            verify_strategy(strategy).raise_if_failed()
        device = strategy.device
        if swap_cycles is None:
            swap_cycles = (
                strategy.weight_transfer_bytes
                / device.bandwidth_bytes_per_s
                * device.frequency_hz
            )
        return cls(
            name=name,
            service_model=build_service_model(strategy),
            weight=weight,
            priority=priority,
            min_share=min_share,
            swap_cycles=swap_cycles,
            frequency_hz=device.frequency_hz,
            ops_per_request=strategy.total_ops,
            reference_gops=strategy.effective_gops(),
            slo_cycles=slo_cycles,
        )


class SharedReplica:
    """One board serving several tenants, with per-tenant accounting.

    The execution math is exactly
    :meth:`repro.serve.runtime.AcceleratorReplica.execute_attempt`, plus
    a swap term: when the batch's tenant differs from the one whose
    weights are loaded, the service time grows by the tenant's
    ``swap_cycles`` (scaled by any active brownout, like the rest of the
    service).  With one tenant the swap term is identically zero and the
    replica is cycle-for-cycle an ``AcceleratorReplica``.
    """

    def __init__(self, replica_id: int, tenants: Sequence[Tenant]):
        self.replica_id = replica_id
        self.tenants = tuple(tenants)
        self.busy_until = 0.0
        self.loaded: Optional[int] = None  # tenant whose weights are resident
        self.swaps = 0
        self.swap_cycles = 0.0
        n = len(self.tenants)
        self._busy = [0.0] * n
        self._batches = [0] * n
        self._requests = [0] * n
        self._failed_batches = [0] * n
        self._wasted = [0.0] * n

    def swap_cost(self, tenant_index: int) -> float:
        """Cycles to load ``tenant_index``'s weights right now.

        Zero when they are already resident — and for the first load on
        an idle replica, which happens before traffic starts.
        """
        if self.loaded is None or self.loaded == tenant_index:
            return 0.0
        return self.tenants[tenant_index].swap_cycles

    def execute_attempt(
        self,
        batch: Sequence[InferenceRequest],
        dispatch_cycle: float,
        tenant_index: int,
        injector=None,
    ) -> BatchAttempt:
        """Run one tenant's batch, paying the swap if weights changed."""
        if not batch:
            raise ServingError("cannot execute an empty batch")
        model = self.tenants[tenant_index].service_model
        swap = self.swap_cost(tenant_index)
        swapped = swap > 0
        self.loaded = tenant_index
        start = max(dispatch_cycle, self.busy_until)
        if injector is None:
            service = swap + model.batch_cycles(len(batch))
            end = start + service
            self.busy_until = end
            if swapped:
                self.swaps += 1
                self.swap_cycles += swap
            self._busy[tenant_index] += service
            self._batches[tenant_index] += 1
            self._requests[tenant_index] += len(batch)
            return BatchAttempt(start_cycle=start, end_cycle=end, ok=True)
        start = injector.available_from(self.replica_id, start)
        scale = injector.service_scale(self.replica_id, start)
        service = (swap + model.batch_cycles(len(batch))) * scale
        end = start + service
        if swapped:
            self.swaps += 1
            self.swap_cycles += swap * scale
        crash = injector.crash_in(self.replica_id, start, end)
        if crash is not None:
            self.busy_until = crash
            self._wasted[tenant_index] += crash - start
            self._failed_batches[tenant_index] += 1
            return BatchAttempt(start, crash, ok=False, failure="crash")
        self.busy_until = end
        if injector.transient_failure(self.replica_id):
            self._wasted[tenant_index] += service
            self._failed_batches[tenant_index] += 1
            return BatchAttempt(start, end, ok=False, failure="transient")
        self._busy[tenant_index] += service
        self._batches[tenant_index] += 1
        self._requests[tenant_index] += len(batch)
        return BatchAttempt(start, end, ok=True)

    def stats_for(self, tenant_index: int) -> ReplicaStats:
        """This replica's counters restricted to one tenant's work."""
        return ReplicaStats(
            replica_id=self.replica_id,
            batches=self._batches[tenant_index],
            requests=self._requests[tenant_index],
            busy_cycles=self._busy[tenant_index],
            failed_batches=self._failed_batches[tenant_index],
            wasted_cycles=self._wasted[tenant_index],
        )

    def __repr__(self) -> str:
        loaded = (
            self.tenants[self.loaded].name if self.loaded is not None else "-"
        )
        return (
            f"SharedReplica(id={self.replica_id}, loaded={loaded}, "
            f"busy_until={self.busy_until:.0f}, swaps={self.swaps})"
        )


@dataclass(frozen=True)
class MultiTenantResult:
    """Everything one multi-tenant run produced.

    ``per_tenant`` maps tenant name to the same :class:`ServingResult`
    shape the single-model scheduler returns — per-tenant records,
    failures and :class:`~repro.serve.metrics.ServingMetrics` — so every
    downstream consumer (reporting, SLO checks, tests) is shared.
    """

    per_tenant: Dict[str, ServingResult]
    sharing: str
    weights: Dict[str, float]
    swaps: int  # warm weight reloads across the fleet
    swap_cycles: float  # total cycles spent swapping
    makespan_cycles: float  # first arrival -> last completion, all tenants
    #: Fleet-level control-plane outcome (:mod:`repro.resilience`);
    #: None when no control plane ran or it never acted.
    recovery: Optional[dict] = None

    def metrics_for(self, name: str):
        return self.per_tenant[name].metrics

    @property
    def makespan_seconds(self) -> float:
        frequencies = {
            r.metrics.frequency_hz for r in self.per_tenant.values()
        }
        return self.makespan_cycles / frequencies.pop()

    def to_dict(self) -> dict:
        return {
            "sharing": self.sharing,
            "weights": dict(self.weights),
            "swaps": self.swaps,
            "swap_cycles": self.swap_cycles,
            "makespan_cycles": self.makespan_cycles,
            "recovery": self.recovery,
            "tenants": {
                name: result.metrics.to_dict()
                for name, result in self.per_tenant.items()
            },
        }

    def summary(self) -> str:
        lines = [
            f"multi-tenant run ({self.sharing}): "
            f"{len(self.per_tenant)} tenant(s), "
            f"makespan {self.makespan_cycles:,.0f} cycles, "
            f"{self.swaps} warm swaps "
            f"({self.swap_cycles:,.0f} cycles)"
        ]
        for name, result in self.per_tenant.items():
            metrics = result.metrics
            if metrics.requests == 0:
                # A dead tenant has no latency distribution — report the
                # outcome explicitly instead of NaN-laced percentiles.
                lines.append(
                    f"  [{name}] weight {self.weights[name]:g}: "
                    f"no completed requests "
                    f"({metrics.failed} failed, {metrics.shed} shed, "
                    f"{metrics.retries} retries)"
                )
                continue
            lines.append(
                f"  [{name}] weight {self.weights[name]:g}: "
                f"{metrics.requests} served, "
                f"p95 {metrics.p95_latency_cycles:,.0f} cycles, "
                f"goodput {metrics.goodput_per_second:,.1f} req/s"
                + (
                    f", SLO {metrics.slo_attainment * 100:.1f}%"
                    if metrics.slo_attainment is not None
                    else ""
                )
            )
        if self.recovery is not None:
            rec = self.recovery
            lines.append(
                f"  recovery: {len(rec.get('events', []))} events, "
                f"{rec.get('ladder_steps', 0)} ladder steps"
            )
        return "\n".join(lines)


class MultiTenantScheduler:
    """Serves several models' traffic on one shared replica fleet.

    A strict generalization of :class:`FleetScheduler`: per-tenant
    batchers, retry heaps and admission bounds around the same
    deterministic event loop, with the sharing discipline deciding which
    tenant's batch a free replica takes.  One tenant with default knobs
    degenerates to the parent scheduler exactly.
    """

    def __init__(
        self,
        tenants: Sequence[Tenant],
        replicas: int = 1,
        policy: Union[str, Policy] = Policy.LEAST_LOADED,
        sharing: str = "weighted_fair",
        max_batch: int = 8,
        max_wait_cycles: Optional[float] = None,
        faults: Union[FaultSpec, str, None] = None,
        fault_seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        max_queue: Optional[int] = None,
        resilience=None,
    ):
        """
        Args:
            tenants: The models sharing the fleet (unique names, one
                common clock frequency).
            replicas: Number of shared boards.
            policy: Replica placement — ``round_robin``/``least_loaded``,
                as in the parent scheduler.
            sharing: ``weighted_fair`` or ``strict_priority``.
            max_batch: Dynamic batching cap (per tenant queue).
            max_wait_cycles: Partial-batch deadline; defaults per tenant
                to half its single-image latency (the parent's default).
            faults / fault_seed / retry: Fault schedule and retry policy,
                shared by all tenants (see :mod:`repro.faults`).
            max_queue: Per-tenant admission bound (arrivals finding this
                many of *their* tenant's requests pending are shed).
            resilience: Control-plane policy (:mod:`repro.resilience`).
                The shed rung tightens admission for tenants *without* a
                WFQ floor (``min_share == 0``) — "shed low-priority
                tenants"; floor-protected tenants keep their base bound.
        """
        if not tenants:
            raise CapacityError("a multi-tenant fleet needs >= 1 tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise CapacityError(f"duplicate tenant names: {names}")
        frequencies = {t.frequency_hz for t in tenants}
        if len(frequencies) > 1:
            raise CapacityError(
                "tenants of one fleet must share a clock frequency, got "
                + ", ".join(
                    f"{t.name}={t.frequency_hz / 1e6:g}MHz" for t in tenants
                )
            )
        if sharing not in SHARING_KINDS:
            raise CapacityError(
                f"unknown sharing discipline {sharing!r} "
                f"(expected one of {SHARING_KINDS})"
            )
        floor_total = sum(t.min_share for t in tenants)
        if floor_total >= 1.0:
            raise CapacityError(
                f"min_share floors must sum to < 1, got {floor_total:g}"
            )
        if replicas < 1:
            raise CapacityError(f"a fleet needs >= 1 replica, got {replicas}")
        if max_queue is not None and max_queue < 1:
            raise ServingError(f"max_queue must be >= 1, got {max_queue}")
        self.tenants = tuple(tenants)
        self.num_replicas = replicas
        self.policy = Policy(policy)
        self.sharing = sharing
        self.max_batch = max_batch
        self.max_wait_cycles = max_wait_cycles
        self.frequency_hz = frequencies.pop()
        self.faults = (
            FaultSpec.parse(faults) if isinstance(faults, str) else faults
        )
        self.fault_seed = fault_seed
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_queue = max_queue
        self.resilience = resilience
        # Validate the batching knobs and the fault spec eagerly, the
        # way the parent scheduler does.
        for tenant in self.tenants:
            DynamicBatcher(max_batch, self._tenant_max_wait(tenant))
        self._build_injector()

    @classmethod
    def for_strategies(
        cls,
        strategies: Mapping[str, Strategy],
        weights: Optional[Mapping[str, float]] = None,
        priorities: Optional[Mapping[str, int]] = None,
        min_shares: Optional[Mapping[str, float]] = None,
        slo_cycles: Optional[Mapping[str, float]] = None,
        verify: bool = True,
        **kwargs,
    ) -> "MultiTenantScheduler":
        """Build a shared fleet from named compiled strategies."""
        tenants = [
            Tenant.for_strategy(
                name,
                strategy,
                weight=(weights or {}).get(name, 1.0),
                priority=(priorities or {}).get(name, 0),
                min_share=(min_shares or {}).get(name, 0.0),
                slo_cycles=(slo_cycles or {}).get(name),
                verify=verify,
            )
            for name, strategy in strategies.items()
        ]
        return cls(tenants, **kwargs)

    def _tenant_max_wait(self, tenant: Tenant) -> float:
        if self.max_wait_cycles is not None:
            return self.max_wait_cycles
        return 0.5 * tenant.service_model.single_image_cycles

    def _build_replicas(self) -> List[SharedReplica]:
        return [
            SharedReplica(i, self.tenants) for i in range(self.num_replicas)
        ]

    def _build_injector(self) -> Optional[FaultInjector]:
        if self.faults is None or self.faults.empty:
            return None
        return FaultInjector(
            self.faults, seed=self.fault_seed, replicas=self.num_replicas
        )

    def _pick_replica(
        self, fleet, rotation: int, clock: float, injector
    ) -> Tuple[Optional[SharedReplica], float]:
        """Identical replica choice to the parent scheduler."""
        if injector is None:
            if self.policy is Policy.ROUND_ROBIN:
                target = fleet[rotation % len(fleet)]
            else:
                target = min(fleet, key=lambda r: (r.busy_until, r.replica_id))
            return target, target.busy_until
        ready = {
            r.replica_id: injector.available_from(
                r.replica_id, max(clock, r.busy_until)
            )
            for r in fleet
        }
        if all(math.isinf(cycle) for cycle in ready.values()):
            return None, math.inf
        if self.policy is Policy.ROUND_ROBIN:
            for offset in range(len(fleet)):
                candidate = fleet[(rotation + offset) % len(fleet)]
                at = ready[candidate.replica_id]
                if at == max(clock, candidate.busy_until):
                    return candidate, at
        target = min(fleet, key=lambda r: (ready[r.replica_id], r.replica_id))
        return target, ready[target.replica_id]

    # -- the event loop ------------------------------------------------------

    def run(
        self,
        arrivals: Mapping[str, Sequence[float]],
        arrival_meta: Optional[Mapping[str, dict]] = None,
    ) -> MultiTenantResult:
        """Serve every tenant's arrival trace to completion.

        ``arrivals`` maps tenant name to its arrival cycles (every
        tenant needs a non-empty trace); ``arrival_meta`` optionally
        stamps per-tenant replay provenance into the metrics (see
        :meth:`repro.traffic.TrafficTrace.arrival_meta`).
        """
        n = len(self.tenants)
        index_of = {t.name: i for i, t in enumerate(self.tenants)}
        missing = [t.name for t in self.tenants if t.name not in arrivals]
        if missing:
            raise CapacityError(f"no arrival trace for tenant(s): {missing}")
        unknown = [name for name in arrivals if name not in index_of]
        if unknown:
            raise CapacityError(f"arrival trace for unknown tenant(s): {unknown}")
        meta = dict(arrival_meta or {})

        requests: List[List[InferenceRequest]] = []
        for tenant in self.tenants:
            trace = sorted(float(c) for c in arrivals[tenant.name])
            if not trace:
                raise ServingError("cannot serve an empty arrival trace")
            if trace[0] < 0:
                raise ServingError("arrival cycles must be non-negative")
            requests.append(
                [
                    InferenceRequest(request_id=i, arrival_cycle=c)
                    for i, c in enumerate(trace)
                ]
            )

        fleet = self._build_replicas()
        injector = self._build_injector()
        control = None
        if self.resilience is not None:
            from repro.resilience.controller import RecoveryController

            # Shared-replica attempt spans include warm-swap cycles, so
            # the latency-inflation trigger stays off (like pipelines).
            control = RecoveryController(
                self.resilience,
                num_replicas=self.num_replicas,
                base_max_batch=self.max_batch,
                base_max_queue=self.max_queue,
                fallback_available=False,
                latency_trigger=False,
            )
        protected = [t.min_share > 0 for t in self.tenants]
        batchers = [
            DynamicBatcher(self.max_batch, self._tenant_max_wait(t))
            for t in self.tenants
        ]
        backoff_base = [
            self.retry.backoff_cycles
            if self.retry.backoff_cycles is not None
            else 0.25 * t.service_model.single_image_cycles
            for t in self.tenants
        ]
        records: List[List[RequestRecord]] = [[] for _ in range(n)]
        failures: List[List[RequestRecord]] = [[] for _ in range(n)]
        retry_heaps: List[List[Tuple[float, int, InferenceRequest]]] = [
            [] for _ in range(n)
        ]
        retry_seq = count()
        retries = [0] * n
        next_arrival = [0] * n
        vtime = [0.0] * n  # weighted-fair virtual time per tenant
        last_finish = [0.0] * n  # end cycle of each tenant's last batch
        served_occupancy = [0.0] * n  # replica cycles each tenant consumed
        clock = 0.0
        rotation = 0

        def tenant_pending_cycle(t: int) -> float:
            cycle = math.inf
            if next_arrival[t] < len(requests[t]):
                cycle = requests[t][next_arrival[t]].arrival_cycle
            if retry_heaps[t]:
                cycle = min(cycle, retry_heaps[t][0][0])
            return cycle

        def next_pending() -> Tuple[float, int]:
            """Earliest not-yet-admitted arrival and its tenant.

            Cross-tenant ties go to the lowest tenant index — the same
            deterministic order tenants were declared in.
            """
            best_cycle, best_t = math.inf, -1
            for t in range(n):
                cycle = tenant_pending_cycle(t)
                if cycle < best_cycle:
                    best_cycle, best_t = cycle, t
            return best_cycle, best_t

        def next_admissible() -> Tuple[float, int]:
            """Earliest pending arrival among tenants with batch room.

            The pre-dispatch admission gate uses this instead of
            :func:`next_pending` so one tenant's full batch (plus older
            backlog) cannot freeze every other tenant out of admission —
            with a single tenant the two are identical whenever the gate
            can pass.
            """
            best_cycle, best_t = math.inf, -1
            for t in range(n):
                if batchers[t].has_full_batch():
                    continue
                cycle = tenant_pending_cycle(t)
                if cycle < best_cycle:
                    best_cycle, best_t = cycle, t
            return best_cycle, best_t

        def admit_from(t: int) -> None:
            """Admit tenant ``t``'s earliest pending request (retries win
            ties).

            Exactly the parent's admission, per tenant: fresh arrivals
            are shed when the tenant's queue is at ``max_queue``;
            retries are always admitted — unless their deadline already
            passed by admission time, in which case the retry is dropped
            rather than re-queued for a doomed attempt.  Under the
            control plane's shed rung, tenants without a WFQ floor get
            the tightened admission bound.
            """
            trace_cycle = (
                requests[t][next_arrival[t]].arrival_cycle
                if next_arrival[t] < len(requests[t])
                else math.inf
            )
            if retry_heaps[t] and retry_heaps[t][0][0] <= trace_cycle:
                cycle, _, request = heappop(retry_heaps[t])
                at = max(clock, cycle)
                deadline_at = (
                    request.origin_cycle + self.retry.deadline_cycles
                    if self.retry.deadline_cycles is not None
                    else math.inf
                )
                if at >= deadline_at:
                    drop_failed(t, request, at, at, -1, 0)
                    return
                _activate(t, cycle)
                batchers[t].add(request)
                return
            request = requests[t][next_arrival[t]]
            next_arrival[t] += 1
            max_queue = (
                control.tenant_queue_limit(self.max_queue, protected[t])
                if control is not None
                else self.max_queue
            )
            if max_queue is not None and len(batchers[t]) >= max_queue:
                failures[t].append(
                    RequestRecord(
                        request_id=request.request_id,
                        arrival_cycle=request.origin_cycle,
                        dispatch_cycle=request.arrival_cycle,
                        completion_cycle=request.arrival_cycle,
                        replica_id=-1,
                        batch_size=0,
                        attempts=request.attempts,
                        outcome="shed",
                    )
                )
                return
            _activate(t, request.arrival_cycle)
            batchers[t].add(request)

        def _activate(t: int, arrival_cycle: float) -> None:
            """Catch a *genuinely idle* tenant's virtual time up.

            A tenant idle for a long stretch holds a stale (tiny)
            virtual time and would monopolize the fleet on return; the
            start-time-fair-queueing fix is to restart it no earlier
            than the busiest competitor's clock.  "Idle" means the new
            request arrived after the tenant's last batch finished — an
            empty *batcher* alone does not qualify, because under
            saturation the backlog waits in the unadmitted trace and the
            batcher drains to empty at every dispatch.
            """
            if len(batchers[t]) or arrival_cycle < last_finish[t]:
                return  # already active, or backlogged rather than idle
            active_vtimes = [
                vtime[u] for u in range(n) if u != t and len(batchers[u])
            ]
            if active_vtimes:
                vtime[t] = max(vtime[t], min(active_vtimes))

        def drop_failed(
            t: int,
            request: InferenceRequest,
            start: float,
            end: float,
            replica_id: int,
            batch_size: int,
        ) -> None:
            failures[t].append(
                RequestRecord(
                    request_id=request.request_id,
                    arrival_cycle=request.origin_cycle,
                    dispatch_cycle=start,
                    completion_cycle=end,
                    replica_id=replica_id,
                    batch_size=batch_size,
                    attempts=request.attempts,
                    outcome="failed",
                )
            )

        def share_key(t: int) -> Tuple:
            """Deterministic tenant ordering at equal dispatch instants."""
            if self.sharing == "weighted_fair":
                return (vtime[t], t)
            # Strict priority with a starvation floor: a tenant below
            # its configured share of served cycles jumps the queue.
            total = sum(served_occupancy)
            share = served_occupancy[t] / total if total > 0 else 0.0
            starving = self.tenants[t].min_share > 0 and (
                share < self.tenants[t].min_share
            )
            return (0 if starving else 1, -self.tenants[t].priority, t)

        def pending_work() -> bool:
            return any(
                next_arrival[t] < len(requests[t])
                or retry_heaps[t]
                or len(batchers[t])
                for t in range(n)
            )

        while pending_work():
            active = [t for t in range(n) if len(batchers[t])]
            if not active:
                cycle, _ = next_pending()
                clock = max(clock, cycle)
                while True:
                    cycle, t = next_pending()
                    if cycle > clock:
                        break
                    admit_from(t)
                continue
            target, ready_at = self._pick_replica(
                fleet, rotation, clock, injector
            )
            if target is None:
                # Log any deaths the attempt path never saw; a shared
                # fleet has no survivor plan to rebuild from, so this
                # only feeds the recovery log before the mass-fail.
                if control is not None:
                    control.check_dead_fleet(fleet, clock, injector)
                    for action in control.pop_actions():
                        if action.kind == "rebuild":
                            control.note_rebuild_failed(
                                action.replica, action.cycle,
                                "shared fleet: no survivor plan",
                            )
                # Dead fleet: everything queued, retrying or still to
                # arrive fails — exactly the parent's behaviour, per
                # tenant.
                for t in range(n):
                    for request in batchers[t].pending:
                        at = max(clock, request.arrival_cycle)
                        drop_failed(t, request, at, at, -1, 0)
                    while retry_heaps[t]:
                        cycle, _, request = heappop(retry_heaps[t])
                        at = max(clock, cycle)
                        drop_failed(t, request, at, at, -1, 0)
                    while next_arrival[t] < len(requests[t]):
                        request = requests[t][next_arrival[t]]
                        next_arrival[t] += 1
                        at = max(clock, request.arrival_cycle)
                        drop_failed(t, request, at, at, -1, 0)
                break
            # Which tenant's batch would this replica take, and when?
            chosen, chosen_key, dispatch_at = -1, None, math.inf
            for t in active:
                if batchers[t].has_full_batch():
                    at = max(clock, ready_at)
                else:
                    at = max(clock, batchers[t].next_deadline(), ready_at)
                key = (at,) + share_key(t)
                if chosen_key is None or key < chosen_key:
                    chosen, chosen_key, dispatch_at = t, key, at
            # Arrivals at or before the dispatch instant join first —
            # they may fill their tenant's batch and change the choice
            # (the parent's admit-before-dispatch rule, gated on the
            # *arriving* tenant's batch room so a backlogged competitor
            # is admitted into contention, not frozen out of selection).
            pending_cycle, pending_tenant = next_admissible()
            if pending_cycle <= dispatch_at:
                clock = max(clock, pending_cycle)
                admit_from(pending_tenant)
                continue
            clock = dispatch_at
            batch = batchers[chosen].pop_batch(clock)
            attempt = target.execute_attempt(batch, clock, chosen, injector)
            rotation += 1
            if control is not None:
                control.observe(
                    target.replica_id, attempt, len(batch), injector
                )
                for action in control.pop_actions():
                    if action.kind == "shrink_batch":
                        for b in batchers:
                            b.max_batch = control.max_batch
                    elif action.kind == "rebuild":
                        control.note_rebuild_failed(
                            action.replica, action.cycle,
                            "shared fleet: no survivor plan "
                            "(failover handles the loss)",
                        )
                    # "shed": admission reads tenant_queue_limit directly
            occupancy = attempt.end_cycle - attempt.start_cycle
            served_occupancy[chosen] += occupancy
            last_finish[chosen] = attempt.end_cycle
            if self.sharing == "weighted_fair":
                vtime[chosen] += occupancy / self.tenants[chosen].weight
            if attempt.ok:
                for request in batch:
                    records[chosen].append(
                        RequestRecord(
                            request_id=request.request_id,
                            arrival_cycle=request.origin_cycle,
                            dispatch_cycle=attempt.start_cycle,
                            completion_cycle=attempt.end_cycle,
                            replica_id=target.replica_id,
                            batch_size=len(batch),
                            attempts=request.attempts,
                        )
                    )
                continue
            for request in batch:
                backoff = self.retry.backoff(
                    request.attempts, backoff_base[chosen]
                )
                rearrival = attempt.end_cycle + backoff
                deadline_at = (
                    request.origin_cycle + self.retry.deadline_cycles
                    if self.retry.deadline_cycles is not None
                    else math.inf
                )
                if (
                    request.attempts >= self.retry.max_attempts
                    or rearrival >= deadline_at
                ):
                    drop_failed(
                        chosen,
                        request,
                        attempt.start_cycle,
                        attempt.end_cycle,
                        target.replica_id,
                        len(batch),
                    )
                else:
                    retries[chosen] += 1
                    heappush(
                        retry_heaps[chosen],
                        (rearrival, next(retry_seq), request.retry_at(rearrival)),
                    )

        per_tenant: Dict[str, ServingResult] = {}
        events: List[float] = []
        for t, tenant in enumerate(self.tenants):
            records[t].sort(key=lambda r: r.request_id)
            failures[t].sort(key=lambda r: r.request_id)
            metrics = aggregate_metrics(
                records[t],
                [replica.stats_for(t) for replica in fleet],
                frequency_hz=self.frequency_hz,
                ops_per_request=tenant.ops_per_request,
                single_image_cycles=tenant.service_model.single_image_cycles,
                reference_gops=tenant.reference_gops,
                failures=failures[t],
                retries=retries[t],
                slo_cycles=tenant.slo_cycles,
                arrival=meta.get(tenant.name),
            )
            per_tenant[tenant.name] = ServingResult(
                records=tuple(records[t]),
                metrics=metrics,
                failures=tuple(failures[t]),
            )
            everything = records[t] + failures[t]
            events.append(min(r.arrival_cycle for r in everything))
            events.append(max(r.completion_cycle for r in everything))
        recovery = None
        if control is not None:
            all_records = sorted(
                (r for tenant_records in records for r in tenant_records),
                key=lambda r: (r.arrival_cycle, r.completion_cycle),
            )
            recovery = control.finalize(all_records, self.frequency_hz)
        return MultiTenantResult(
            per_tenant=per_tenant,
            sharing=self.sharing,
            weights={t.name: t.weight for t in self.tenants},
            swaps=sum(r.swaps for r in fleet),
            swap_cycles=sum(r.swap_cycles for r in fleet),
            makespan_cycles=max(events) - min(events),
            recovery=recovery,
        )

    def run_trace(self, trace, scale: float = 1.0) -> MultiTenantResult:
        """Serve a recorded :class:`~repro.traffic.TrafficTrace`.

        ``scale`` rescales the trace's cycle domain (reference clock →
        this fleet's clock); replay provenance is stamped into each
        tenant's metrics automatically.
        """
        scaled = trace.scaled(scale)
        return self.run(scaled.arrivals(), arrival_meta=scaled.arrival_meta())
