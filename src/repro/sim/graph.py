"""Execution of branch-aware graph strategies on the simulator.

Walks a :class:`~repro.optimizer.graph_dp.GraphStrategy` segment by
segment, reusing the chain simulator wholesale:

* a **chain** segment runs through :func:`~repro.sim.simulator.
  simulate_strategy` on its sub-network — functional rows through the
  streaming engines plus the row-level timing recurrence;
* a **split parallel** segment simulates each branch recursively on the
  fork tensor (an identity skip passes it through untouched), combines
  the branch outputs with the join's reference math, and pays the
  join's priced DRAM latency (zero for a concat);
* a **fused parallel** segment streams each branch's rows through its
  own engine chain off the shared fork tensor; branch pipelines run
  concurrently, so the segment's time is the slowest branch's trace
  (cross-branch DRAM contention is already inside the segment's
  analytic latency, which tests compare against).

The serving side mirrors this: :func:`build_graph_service_model`
concatenates per-segment :class:`~repro.sim.simulator.GroupServiceModel`
entries — chain groups verbatim, eltwise joins as bandwidth-only pseudo
groups, fused blocks as single groups — into the same
:class:`~repro.sim.simulator.ServiceModel` the schedulers consume, so a
graph strategy drops into the serving stack unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.nn.functional import forward_join, init_graph_weights
from repro.nn.graph import Graph
from repro.nn.layers import InputSpec
from repro.nn.network import Network
from repro.optimizer.graph_dp import (
    ChainSegment,
    FusedParallelSegment,
    GraphStrategy,
    ParallelSegment,
)
from repro.sim.simulator import (
    GroupServiceModel,
    ServiceModel,
    _group_forward,
    _group_timing,
    simulate_strategy,
)
from repro.sim.trace import GroupTrace


@dataclass(frozen=True)
class SegmentTrace:
    """Timing span of one top-level segment of a graph strategy."""

    kind: str  #: "chain" | "parallel" | "fused"
    label: str
    start_cycle: float
    end_cycle: float
    group_traces: Tuple[GroupTrace, ...] = ()

    @property
    def cycles(self) -> float:
        return self.end_cycle - self.start_cycle


@dataclass
class GraphSimulationResult:
    """Outcome of simulating a graph strategy on one input image."""

    output: np.ndarray
    latency_cycles: float
    segment_traces: List[SegmentTrace]

    def latency_seconds(self, frequency_hz: float) -> float:
        return self.latency_cycles / frequency_hz

    def report(self) -> str:
        lines = [f"simulated latency: {self.latency_cycles:,.0f} cycles"]
        for trace in self.segment_traces:
            lines.append(
                f"  [{trace.kind}] {trace.label}: "
                f"{trace.cycles:,.0f} cycles"
            )
        return "\n".join(lines)


def _branch_network(graph: Graph, segment: FusedParallelSegment, nodes) -> Network:
    fork_ref = segment.fork if segment.fork is not None else graph.input_name
    spec = InputSpec(*graph.producer_shape(fork_ref))
    return Network(
        f"{graph.name}/{fork_ref}..{segment.join}",
        spec,
        [graph.node(name).layer for name in nodes],
    )


def _simulate(
    strategy: GraphStrategy,
    data: np.ndarray,
    weights: Dict[str, Dict[str, np.ndarray]],
    quantize,
    clock: float,
    label: str,
    traces: List[SegmentTrace],
) -> Tuple[np.ndarray, float]:
    """Run one (possibly nested) graph strategy; returns (output, clock)."""
    graph = strategy.graph
    current = data
    for index, segment in enumerate(strategy.segments):
        start = clock
        prefix = f"{label}{index}" if label else f"{index}"
        if isinstance(segment, ChainSegment):
            result = simulate_strategy(
                segment.strategy, current, weights=weights, quantize=quantize
            )
            current = result.output
            clock += result.latency_cycles
            traces.append(
                SegmentTrace(
                    kind="chain",
                    label=f"{prefix}:{segment.nodes[0]}..{segment.nodes[-1]}",
                    start_cycle=start,
                    end_cycle=clock,
                    group_traces=tuple(result.group_traces),
                )
            )
        elif isinstance(segment, ParallelSegment):
            fork_blob = current
            outputs = []
            for b, branch in enumerate(segment.branches):
                if not branch.segments:  # identity skip
                    outputs.append(fork_blob)
                    continue
                out, clock = _simulate(
                    branch,
                    fork_blob,
                    weights,
                    quantize,
                    clock,
                    f"{prefix}.b{b}.",
                    traces,
                )
                outputs.append(out)
            current = forward_join(graph.node(segment.join).layer, outputs)
            if quantize is not None:
                current = quantize.quantize(current)
            clock += segment.join_latency_cycles
            traces.append(
                SegmentTrace(
                    kind="parallel",
                    label=f"{prefix}:join {segment.join} ({segment.join_kind})",
                    start_cycle=start,
                    end_cycle=clock,
                )
            )
        else:
            fork_blob = current
            outputs = []
            branch_end = clock
            group_traces: List[GroupTrace] = []
            for b, nodes in enumerate(segment.branch_nodes):
                if not nodes:  # identity skip
                    outputs.append(fork_blob)
                    continue
                net = _branch_network(graph, segment, nodes)
                impls = list(segment.branch_implementations[b])
                infos = list(net.infos)
                outputs.append(
                    _group_forward(infos, impls, fork_blob, weights, quantize)
                )
                trace = _group_timing(b, infos, impls, strategy.device, clock)
                group_traces.append(trace)
                branch_end = max(branch_end, trace.end_cycle)
            current = forward_join(graph.node(segment.join).layer, outputs)
            if quantize is not None:
                current = quantize.quantize(current)
            clock = branch_end
            traces.append(
                SegmentTrace(
                    kind="fused",
                    label=f"{prefix}:join {segment.join} ({segment.join_kind})",
                    start_cycle=start,
                    end_cycle=clock,
                    group_traces=tuple(group_traces),
                )
            )
    return current, clock


def simulate_graph_strategy(
    strategy: GraphStrategy,
    data: np.ndarray,
    weights: Optional[Dict[str, Dict[str, np.ndarray]]] = None,
    quantize=None,
    rng: Optional[np.random.Generator] = None,
) -> GraphSimulationResult:
    """Execute a graph strategy on an input image.

    The DAG sibling of :func:`~repro.sim.simulator.simulate_strategy`:
    same weight/quantization semantics, with the functional output
    matching :func:`repro.nn.functional.forward_graph` on the same
    weights (asserted in tests).
    """
    graph = strategy.graph
    if tuple(data.shape) != graph.input_spec.shape:
        raise SimulationError(
            f"input shape {data.shape} != graph input {graph.input_spec.shape}"
        )
    if weights is None:
        weights = init_graph_weights(graph, rng)
    if quantize is not None:
        from repro.algorithms.fixed_point import quantize_model_weights

        weights = quantize_model_weights(weights, quantize)
        data = quantize.quantize(np.asarray(data, dtype=float))

    traces: List[SegmentTrace] = []
    output, clock = _simulate(
        strategy, np.asarray(data, dtype=float), weights, quantize, 0.0, "", traces
    )
    return GraphSimulationResult(
        output=output, latency_cycles=clock, segment_traces=traces
    )


def _collect_service_groups(
    strategy: GraphStrategy, groups: List[GroupServiceModel]
) -> None:
    from repro.sim.simulator import build_service_model

    for segment in strategy.segments:
        if isinstance(segment, ChainSegment):
            for group in build_service_model(segment.strategy).groups:
                groups.append(
                    GroupServiceModel(
                        group_id=len(groups),
                        preload_cycles=group.preload_cycles,
                        first_image_cycles=group.first_image_cycles,
                        steady_interval_cycles=group.steady_interval_cycles,
                    )
                )
        elif isinstance(segment, ParallelSegment):
            for branch in segment.branches:
                _collect_service_groups(branch, groups)
            if segment.join_latency_cycles > 0:
                # An eltwise join is a bandwidth-only stage: no weights
                # to preload, no pipeline to fill, one DRAM round trip
                # per image.
                groups.append(
                    GroupServiceModel(
                        group_id=len(groups),
                        preload_cycles=0.0,
                        first_image_cycles=float(segment.join_latency_cycles),
                        steady_interval_cycles=float(
                            segment.join_latency_cycles
                        ),
                    )
                )
        else:
            steady = max(segment.compute_cycles, segment.transfer_cycles)
            groups.append(
                GroupServiceModel(
                    group_id=len(groups),
                    preload_cycles=0.0,
                    first_image_cycles=float(segment.latency_cycles),
                    steady_interval_cycles=float(
                        min(steady, segment.latency_cycles)
                    ),
                )
            )


def build_graph_service_model(strategy: GraphStrategy) -> ServiceModel:
    """Derive the batched service-time model of a graph strategy.

    Returns the same :class:`~repro.sim.simulator.ServiceModel` type the
    chain path produces, so replicas, schedulers and the serving metrics
    consume graph strategies without change.
    """
    groups: List[GroupServiceModel] = []
    _collect_service_groups(strategy, groups)
    return ServiceModel(groups=tuple(groups))
