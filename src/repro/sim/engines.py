"""Row-streaming functional engines for every accelerated layer type.

Each engine is a generator: it consumes input rows of shape
``(channels, width)`` one at a time — exactly what flows through the FIFO
channels between fused layers — and yields output rows as soon as they
are computable.  The conventional convolution engine runs on the circular
line buffer itself; the Winograd engine consumes whole tile strips
(``m`` output rows at once) mirroring the hardware's production pattern.

Functional equivalence with :mod:`repro.nn.functional` is the key
architecture-validation property and is enforced by the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import SimulationError, UnsupportedLayerError
from repro.algorithms.winograd import winograd_conv2d, winograd_transform
from repro.arch.line_buffer import stream_conv2d
from repro.nn.layers import ConvLayer, Layer, LRNLayer, PoolLayer
from repro.perf.implement import WINOGRAD_M, Algorithm


def _activate(row: np.ndarray, relu: bool) -> np.ndarray:
    return np.maximum(row, 0) if relu else row


def conv_stream(
    rows: Iterator[np.ndarray],
    layer: ConvLayer,
    params: Dict[str, np.ndarray],
    in_height: int,
) -> Iterator[np.ndarray]:
    """Conventional convolution engine (circular line-buffer streaming)."""
    if layer.groups != 1:
        return _grouped_conv_stream(rows, layer, params, in_height)
    return stream_conv2d(
        rows,
        params["weight"],
        params.get("bias"),
        height=in_height,
        stride=layer.stride,
        pad=layer.pad,
        relu=layer.relu,
    )


def _grouped_conv_stream(
    rows: Iterator[np.ndarray],
    layer: ConvLayer,
    params: Dict[str, np.ndarray],
    in_height: int,
) -> Iterator[np.ndarray]:
    """Grouped convolution: each channel group gets its own engine."""
    weight = params["weight"]
    bias = params.get("bias")
    groups = layer.groups
    group_in = weight.shape[1]
    group_out = weight.shape[0] // groups

    cached = list(rows)

    def slice_rows(group: int):
        for row in cached:
            yield row[group * group_in : (group + 1) * group_in]

    streams = []
    for g in range(groups):
        sub_rows = slice_rows(g)
        sub_bias = (
            bias[g * group_out : (g + 1) * group_out] if bias is not None else None
        )
        streams.append(
            stream_conv2d(
                sub_rows,
                weight[g * group_out : (g + 1) * group_out],
                sub_bias,
                height=in_height,
                stride=layer.stride,
                pad=layer.pad,
                relu=layer.relu,
            )
        )
    for parts in zip(*streams):
        yield np.concatenate(parts, axis=0)


def winograd_stream(
    rows: Iterator[np.ndarray],
    layer: ConvLayer,
    params: Dict[str, np.ndarray],
    in_height: int,
    m: int = WINOGRAD_M,
) -> Iterator[np.ndarray]:
    """Winograd engine: consumes row strips, emits ``m`` output rows per strip.

    Buffers ``alpha`` padded rows per tile strip (the deeper Winograd line
    buffer of the resource model) and runs F(m x m, r x r) on each strip.
    """
    if layer.stride != 1:
        raise SimulationError("Winograd engine requires stride 1")
    r = layer.kernel
    pad = layer.pad
    transform = winograd_transform(m, r)
    alpha = transform.alpha
    weight = params["weight"]
    bias = params.get("bias")

    padded_height = in_height + 2 * pad
    out_h = padded_height - r + 1
    if out_h < 1:
        raise SimulationError("kernel taller than padded input")
    tiles_h = -(-out_h // m)

    width: Optional[int] = None
    strip_rows: List[np.ndarray] = []
    state = {"tiles": 0, "rows": 0, "done_feeding": False}

    def emit_ready() -> Iterator[np.ndarray]:
        while state["tiles"] < tiles_h:
            base = state["tiles"] * m
            need = base + alpha
            if len(strip_rows) < need and not state["done_feeding"]:
                return
            strip = np.stack(strip_rows[base : min(need, len(strip_rows))], axis=1)
            if strip.shape[1] < alpha:
                strip = np.pad(strip, [(0, 0), (0, alpha - strip.shape[1]), (0, 0)])
            out = winograd_conv2d(
                strip,
                weight,
                bias,
                pad=0,
                m=m,
                groups=layer.groups,
                transform=transform,
            )
            rows_here = min(m, out_h - base)
            for i in range(rows_here):
                yield _activate(out[:, i, :], layer.relu)
            state["tiles"] += 1
            state["rows"] += rows_here

    for row in rows:
        row = np.asarray(row)
        if width is None:
            width = row.shape[1]
            for _ in range(pad):
                strip_rows.append(np.zeros((row.shape[0], width + 2 * pad)))
        padded_row = np.zeros((row.shape[0], width + 2 * pad))
        padded_row[:, pad : pad + width] = row
        strip_rows.append(padded_row)
        yield from emit_ready()
    if width is None:
        raise SimulationError("winograd engine received no rows")
    for _ in range(pad):
        strip_rows.append(np.zeros((strip_rows[0].shape[0], width + 2 * pad)))
    state["done_feeding"] = True
    yield from emit_ready()
    if state["rows"] != out_h:
        raise SimulationError(
            f"winograd engine emitted {state['rows']} of {out_h} rows"
        )


def pool_stream(
    rows: Iterator[np.ndarray], layer: PoolLayer, in_height: int
) -> Iterator[np.ndarray]:
    """Pooling engine with Caffe ceil-mode boundary handling."""
    k, s, pad = layer.kernel, layer.stride, layer.pad
    fill = -np.inf if layer.mode == "max" else 0.0
    out_h = -(-(in_height + 2 * pad - k) // s) + 1

    width: Optional[int] = None
    channels: Optional[int] = None
    acc: List[np.ndarray] = []
    state = {"emitted": 0, "done_feeding": False}

    def fill_row() -> np.ndarray:
        assert channels is not None and width is not None
        return np.full((channels, width + 2 * pad), fill)

    def compute_row(window_rows: List[np.ndarray]) -> np.ndarray:
        window = np.stack(window_rows, axis=1)  # (C, k, Wp)
        wp = window.shape[2]
        out_w = -(-(wp - k) // s) + 1
        need_w = (out_w - 1) * s + k
        if need_w > wp:
            window = np.pad(
                window, [(0, 0), (0, 0), (0, need_w - wp)], constant_values=fill
            )
        result = np.full((window.shape[0], out_w), fill)
        for u in range(k):
            for v in range(k):
                cols = window[:, u, v : v + s * out_w : s]
                result = np.maximum(result, cols) if layer.mode == "max" else result + cols
        if layer.mode == "ave":
            result = result / (k * k)
        return result

    def emit_ready() -> Iterator[np.ndarray]:
        while state["emitted"] < out_h:
            base = state["emitted"] * s
            need = base + k
            if len(acc) < need and not state["done_feeding"]:
                return
            window = list(acc[base : min(need, len(acc))])
            while len(window) < k:
                window.append(fill_row())
            yield compute_row(window)
            state["emitted"] += 1

    for row in rows:
        row = np.asarray(row)
        if width is None:
            channels, width = row.shape
            for _ in range(pad):
                acc.append(fill_row())
        padded_row = np.full((channels, width + 2 * pad), fill)
        padded_row[:, pad : pad + width] = row
        acc.append(padded_row)
        yield from emit_ready()
    if width is None:
        raise SimulationError("pool engine received no rows")
    for _ in range(pad):
        acc.append(fill_row())
    state["done_feeding"] = True
    yield from emit_ready()
    if state["emitted"] != out_h:
        raise SimulationError(
            f"pool engine emitted {state['emitted']} of {out_h} rows"
        )


def lrn_stream(rows: Iterator[np.ndarray], layer: LRNLayer) -> Iterator[np.ndarray]:
    """LRN engine: purely per-pixel across channels, no row buffering."""
    half = layer.local_size // 2
    for row in rows:
        row = np.asarray(row, dtype=float)
        channels = row.shape[0]
        squared = row**2
        out = np.empty_like(row)
        for c in range(channels):
            lo = max(0, c - half)
            hi = min(channels, c + half + 1)
            scale = layer.k + (layer.alpha / layer.local_size) * squared[lo:hi].sum(
                axis=0
            )
            out[c] = row[c] / scale**layer.beta
        yield out


def inception_stream(
    rows: Iterator[np.ndarray],
    module,
    weights: Dict[str, Dict[str, np.ndarray]],
    in_height: int,
    in_shape,
) -> Iterator[np.ndarray]:
    """Inception macro engine: four branch chains, per-row concatenation.

    Every branch preserves the spatial extent (1x1, padded 3x3/5x5,
    stride-1 padded pool), so the branch streams emit rows in lockstep
    and each output row is the channel concatenation of theirs.
    """
    cached = [np.asarray(row) for row in rows]
    branch_streams = []
    branches = module.branches(in_shape)
    for branch in module.branch_order():
        stream: Iterator[np.ndarray] = iter(cached)
        height = in_height
        shape = in_shape
        for inner in branches[branch]:
            algo = (
                Algorithm.POOL
                if isinstance(inner, PoolLayer)
                else Algorithm.CONVENTIONAL
            )
            stream = layer_stream(
                stream, inner, algo, height, params=weights.get(inner.name)
            )
            shape = inner.output_shape(shape)
            height = shape[1]
        branch_streams.append(stream)
    for parts in zip(*branch_streams):
        yield np.concatenate(parts, axis=0)


def layer_stream(
    rows: Iterator[np.ndarray],
    layer: Layer,
    algorithm: Algorithm,
    in_height: int,
    params: Optional[Dict[str, np.ndarray]] = None,
) -> Iterator[np.ndarray]:
    """Dispatch a row stream through the engine chosen by the strategy."""
    if isinstance(layer, ConvLayer):
        if params is None:
            raise SimulationError(f"conv layer {layer.name!r} needs weights")
        if algorithm == Algorithm.WINOGRAD:
            return winograd_stream(rows, layer, params, in_height)
        if algorithm == Algorithm.CONVENTIONAL:
            return conv_stream(rows, layer, params, in_height)
        raise SimulationError(f"bad conv algorithm {algorithm}")
    if isinstance(layer, PoolLayer):
        return pool_stream(rows, layer, in_height)
    if isinstance(layer, LRNLayer):
        return lrn_stream(rows, layer)
    raise UnsupportedLayerError(f"no engine for {type(layer).__name__}")
