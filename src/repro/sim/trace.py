"""Simulation trace records: per-layer and per-group timing/utilization."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class LayerTrace:
    """Timing of one layer engine inside a simulated group.

    Attributes:
        layer_name: Engine identity.
        algorithm: Algorithm name string.
        out_rows: Output rows produced.
        row_cycles: Cycles the engine is busy per output row.
        first_output_cycle: When the first output row left the engine.
        last_output_cycle: When the final output row left the engine.
        busy_cycles: Total busy time (out_rows x row_cycles).
    """

    layer_name: str
    algorithm: str
    out_rows: int
    row_cycles: float
    first_output_cycle: float
    last_output_cycle: float
    busy_cycles: float

    @property
    def utilization(self) -> float:
        """Busy fraction of the engine over the group's active span."""
        span = self.last_output_cycle
        return self.busy_cycles / span if span > 0 else 0.0


@dataclass(frozen=True)
class GroupTrace:
    """Timing of one fusion group."""

    group_id: int
    layers: Tuple[LayerTrace, ...]
    start_cycle: float
    end_cycle: float
    dram_busy_cycles: float

    @property
    def latency_cycles(self) -> float:
        return self.end_cycle - self.start_cycle

    @property
    def bottleneck_layer(self) -> LayerTrace:
        return max(self.layers, key=lambda t: t.busy_cycles)

    @property
    def dram_utilization(self) -> float:
        latency = self.latency_cycles
        return self.dram_busy_cycles / latency if latency > 0 else 0.0

    def report(self) -> str:
        lines = [
            f"group {self.group_id}: cycles {self.start_cycle:,.0f} -> "
            f"{self.end_cycle:,.0f} (latency {self.latency_cycles:,.0f}), "
            f"DRAM busy {self.dram_utilization * 100:.1f}%"
        ]
        for trace in self.layers:
            lines.append(
                f"  {trace.layer_name:<12} {trace.algorithm:<12} "
                f"rows={trace.out_rows:>4} busy={trace.busy_cycles:>12,.0f} "
                f"util={trace.utilization * 100:5.1f}%"
            )
        return "\n".join(lines)
