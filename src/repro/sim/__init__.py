"""Cycle-approximate simulation of the fused accelerator.

Substitutes for the paper's FPGA board: executes an optimized strategy
both *functionally* (row-streaming engines built on the circular line
buffer, validated against the numpy reference) and *temporally* (a
row-level pipeline timing model with a shared-DRAM rate limiter,
validated against the analytic latency of the optimizer's cost model).
"""

from repro.sim.engines import layer_stream
from repro.sim.fleet import (
    FleetSimulationResult,
    StageSpan,
    TransferSpan,
    simulate_partition,
)
from repro.sim.simulator import (
    GroupServiceModel,
    ServiceModel,
    SimulationResult,
    build_service_model,
    simulate_strategy,
)
from repro.sim.trace import GroupTrace, LayerTrace

__all__ = [
    "FleetSimulationResult",
    "GroupServiceModel",
    "GroupTrace",
    "LayerTrace",
    "ServiceModel",
    "SimulationResult",
    "StageSpan",
    "TransferSpan",
    "build_service_model",
    "layer_stream",
    "simulate_partition",
    "simulate_strategy",
]
