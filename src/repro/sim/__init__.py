"""Cycle-approximate simulation of the fused accelerator.

Substitutes for the paper's FPGA board: executes an optimized strategy
both *functionally* (row-streaming engines built on the circular line
buffer, validated against the numpy reference) and *temporally* (a
row-level pipeline timing model with a shared-DRAM rate limiter,
validated against the analytic latency of the optimizer's cost model).
"""

from repro.sim.engines import layer_stream
from repro.sim.fleet import (
    FleetSimulationResult,
    StageSpan,
    TransferSpan,
    simulate_partition,
)
from repro.sim.graph import (
    GraphSimulationResult,
    SegmentTrace,
    build_graph_service_model,
    simulate_graph_strategy,
)
from repro.sim.simulator import (
    GroupServiceModel,
    ServiceModel,
    SimulationResult,
    build_service_model,
    simulate_strategy,
)
from repro.sim.trace import GroupTrace, LayerTrace

__all__ = [
    "FleetSimulationResult",
    "GraphSimulationResult",
    "GroupServiceModel",
    "GroupTrace",
    "LayerTrace",
    "SegmentTrace",
    "ServiceModel",
    "SimulationResult",
    "StageSpan",
    "TransferSpan",
    "build_graph_service_model",
    "build_service_model",
    "layer_stream",
    "simulate_graph_strategy",
    "simulate_partition",
    "simulate_strategy",
]
