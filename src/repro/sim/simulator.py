"""Strategy execution: functional outputs plus row-level pipeline timing.

For every fusion group the simulator

1. runs the input rows through the chain of streaming engines
   (:mod:`repro.sim.engines`), producing the group's actual output
   feature maps — validated against the numpy reference forward pass;
2. replays the row production schedule through a timing recurrence:

   ``t[l][i] = max(t[l-1][need(l, i)], t[l][i-1]) + row_cycles[l]``

   where ``need(l, i)`` is the last upstream row inside output row
   ``i``'s receptive window, ``row_cycles[l]`` comes from the same
   ``implement()`` cost model the optimizer evaluated through the
   shared evaluation layer (:mod:`repro.perf.cost`), and the head layer's
   rows arrive from a shared-DRAM rate limiter that also carries the
   tail layer's stores and any streamed weights.

Groups execute back to back; the result's latency is comparable (and is
compared, in tests) to the analytic latency of the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.arch.fusion import layer_window
from repro.nn.functional import init_weights
from repro.nn.network import LayerInfo
from repro.perf.implement import Implementation
from repro.optimizer.strategy import Strategy
from repro.sim.engines import layer_stream
from repro.sim.trace import GroupTrace, LayerTrace


@dataclass
class SimulationResult:
    """Outcome of simulating a strategy on one input image."""

    output: np.ndarray
    latency_cycles: float
    group_traces: List[GroupTrace]

    def latency_seconds(self, frequency_hz: float) -> float:
        return self.latency_cycles / frequency_hz

    def report(self) -> str:
        lines = [f"simulated latency: {self.latency_cycles:,.0f} cycles"]
        lines.extend(trace.report() for trace in self.group_traces)
        return "\n".join(lines)


def _rows_of(data: np.ndarray):
    for i in range(data.shape[1]):
        yield data[:, i, :]


def _quantize_stream(stream, fmt):
    for row in stream:
        yield fmt.quantize(row)


def _group_forward(
    infos: List[LayerInfo],
    impls: List[Implementation],
    data: np.ndarray,
    weights: Dict[str, Dict[str, np.ndarray]],
    quantize=None,
) -> np.ndarray:
    """Functionally stream one group's rows through its engine chain."""
    from repro.nn.modules import InceptionModule
    from repro.sim.engines import inception_stream

    stream = _rows_of(data)
    height = data.shape[1]
    for info, impl in zip(infos, impls):
        if isinstance(info.layer, InceptionModule):
            stream = inception_stream(
                stream,
                info.layer,
                weights,
                in_height=height,
                in_shape=info.input_shape,
            )
        else:
            stream = layer_stream(
                stream,
                info.layer,
                impl.algorithm,
                in_height=height,
                params=weights.get(info.name),
            )
        if quantize is not None:
            # The FIFO channels carry the fixed-point datapath word: every
            # inter-layer row is rounded/saturated to the format.
            stream = _quantize_stream(stream, quantize)
        height = info.output_shape[1]
    rows = list(stream)
    if len(rows) != infos[-1].output_shape[1]:
        raise SimulationError(
            f"group produced {len(rows)} rows, expected "
            f"{infos[-1].output_shape[1]}"
        )
    return np.stack(rows, axis=1)


def _last_needed_input_row(info: LayerInfo, out_row: int) -> int:
    """Index of the last unpadded input row inside ``out_row``'s window."""
    layer = info.layer
    window, stride = layer_window(layer)
    pad = getattr(layer, "pad", 0)
    in_rows = info.input_shape[1]
    needed_padded = out_row * stride + window - 1
    return min(max(needed_padded - pad, 0), in_rows - 1)


@dataclass(frozen=True)
class _DramTerms:
    """Shared-DRAM channel terms of one group, per image."""

    in_rows: int
    dram_per_head_row: float  # cycles per head input row (stores amortized in)
    preload_cycles: float  # one-time resident-weight load
    store_bytes: int

    @property
    def per_image_cycles(self) -> float:
        """DRAM busy cycles one image costs, excluding the preload."""
        return self.in_rows * self.dram_per_head_row


def _group_dram_terms(
    infos: List[LayerInfo], impls: List[Implementation], device
) -> _DramTerms:
    bytes_per_cycle = device.bytes_per_cycle
    head = infos[0]
    tail = infos[-1]
    in_rows = head.input_shape[1]
    head_row_bytes = head.input_shape[0] * head.input_shape[2] * device.element_bytes
    store_bytes = tail.output_size * device.element_bytes
    weight_stream_bytes = sum(
        impl.weight_dram_bytes for impl in impls if not impl.weights_resident
    )
    weight_preload_bytes = sum(
        impl.weight_dram_bytes for impl in impls if impl.weights_resident
    )
    # The DRAM channel carries head loads, tail stores and streamed
    # weights concurrently; amortize the latter two over the head rows.
    dram_per_head_row = (
        head_row_bytes + (store_bytes + weight_stream_bytes) / max(in_rows, 1)
    ) / bytes_per_cycle
    return _DramTerms(
        in_rows=in_rows,
        dram_per_head_row=dram_per_head_row,
        preload_cycles=weight_preload_bytes / bytes_per_cycle,
        store_bytes=store_bytes,
    )


def _group_timing(
    group_id: int,
    infos: List[LayerInfo],
    impls: List[Implementation],
    device,
    start_cycle: float,
) -> GroupTrace:
    """Row-level pipeline timing of one group."""
    bytes_per_cycle = device.bytes_per_cycle
    tail = infos[-1]
    dram = _group_dram_terms(infos, impls, device)
    in_rows = dram.in_rows
    store_bytes = dram.store_bytes
    dram_per_head_row = dram.dram_per_head_row
    preload_cycles = dram.preload_cycles

    # Availability time of each head input row.
    input_ready = [
        start_cycle + preload_cycles + (i + 1) * dram_per_head_row
        for i in range(in_rows)
    ]

    traces: List[LayerTrace] = []
    upstream_ready = input_ready
    for info, impl in zip(infos, impls):
        out_rows = info.output_shape[1]
        row_cycles = impl.compute_cycles / max(out_rows, 1)
        ready: List[float] = []
        previous = start_cycle
        for out_row in range(out_rows):
            need = _last_needed_input_row(info, out_row)
            dependency = upstream_ready[min(need, len(upstream_ready) - 1)]
            finish = max(dependency, previous) + row_cycles
            ready.append(finish)
            previous = finish
        traces.append(
            LayerTrace(
                layer_name=info.name,
                algorithm=impl.algorithm.value,
                out_rows=out_rows,
                row_cycles=row_cycles,
                first_output_cycle=ready[0] - start_cycle,
                last_output_cycle=ready[-1] - start_cycle,
                busy_cycles=impl.compute_cycles,
            )
        )
        upstream_ready = ready

    # Draining the last stores through DRAM.
    store_cycles = store_bytes / bytes_per_cycle / max(tail.output_shape[1], 1)
    end_cycle = upstream_ready[-1] + store_cycles
    dram_busy = preload_cycles + in_rows * dram_per_head_row
    return GroupTrace(
        group_id=group_id,
        layers=tuple(traces),
        start_cycle=start_cycle,
        end_cycle=end_cycle,
        dram_busy_cycles=dram_busy,
    )


@dataclass(frozen=True)
class GroupServiceModel:
    """Batched service-time model of one fusion group.

    Derived from the same row-level timing recurrence the single-image
    simulator replays, split into the three terms a serving runtime
    needs: the one-time resident-weight preload, the full pipeline
    latency of the first image, and the steady-state initiation interval
    of each further image streamed back-to-back (bounded by the slowest
    engine or by the shared DRAM channel, whichever binds).
    """

    group_id: int
    preload_cycles: float
    first_image_cycles: float
    steady_interval_cycles: float

    def batch_cycles(self, batch_size: int) -> float:
        """Cycles to push ``batch_size`` images through this group.

        The resident weights are loaded once per batch — the
        amortization dynamic batching exists to buy.
        """
        if batch_size < 1:
            raise SimulationError(f"batch size must be >= 1, got {batch_size}")
        return (
            self.preload_cycles
            + self.first_image_cycles
            + (batch_size - 1) * self.steady_interval_cycles
        )


@dataclass(frozen=True)
class ServiceModel:
    """Timing-only execution model of a whole strategy, batch-aware.

    ``batch_cycles(1)`` equals the single-image simulator latency (the
    groups run back to back); larger batches amortize each group's
    weight preload and pipeline fill across the batch.
    """

    groups: Tuple["GroupServiceModel", ...]

    def batch_cycles(self, batch_size: int) -> float:
        """Service cycles for one batch of ``batch_size`` images."""
        return sum(group.batch_cycles(batch_size) for group in self.groups)

    @property
    def single_image_cycles(self) -> float:
        """Latency of a lone image — the floor of any request latency."""
        return self.batch_cycles(1)

    def throughput_per_cycle(self, batch_size: int) -> float:
        """Steady-state images per cycle when serving full batches."""
        return batch_size / self.batch_cycles(batch_size)


def build_service_model(strategy: Strategy) -> ServiceModel:
    """Derive the batched service-time model of a strategy.

    Purely analytic — no functional execution — so a serving simulation
    can price millions of requests without touching the engines.
    """
    network = strategy.network
    groups = []
    for group_id, ((start, stop), design) in enumerate(
        zip(strategy.boundaries, strategy.designs)
    ):
        infos = [network[i] for i in range(start, stop)]
        impls = list(design.implementations)
        trace = _group_timing(group_id, infos, impls, strategy.device, 0.0)
        dram = _group_dram_terms(infos, impls, strategy.device)
        first = trace.end_cycle - dram.preload_cycles
        # Steady state: one image per bottleneck drain — the slowest
        # engine's busy time or the DRAM channel, whichever is larger —
        # never worse than re-filling the whole pipeline.
        steady = max(
            max(impl.compute_cycles for impl in impls),
            dram.per_image_cycles,
        )
        groups.append(
            GroupServiceModel(
                group_id=group_id,
                preload_cycles=dram.preload_cycles,
                first_image_cycles=first,
                steady_interval_cycles=min(steady, first),
            )
        )
    return ServiceModel(groups=tuple(groups))


def simulate_strategy(
    strategy: Strategy,
    data: np.ndarray,
    weights: Optional[Dict[str, Dict[str, np.ndarray]]] = None,
    quantize=None,
    rng: Optional[np.random.Generator] = None,
) -> SimulationResult:
    """Execute a strategy on an input image.

    Args:
        strategy: An optimized (validated) strategy.
        data: Input blob matching the network's input spec.
        weights: Optional parameter dict; random weights otherwise.
        quantize: Optional :class:`~repro.algorithms.fixed_point.
            FixedPointFormat`; when given, the input, every weight and
            every inter-layer FIFO row are rounded/saturated to the
            format — the 16-bit fixed datapath of the paper's board.
        rng: Generator for the random weights when ``weights`` is not
            given; defaults to a fixed seed so results are reproducible.

    Returns:
        Functional output, end-to-end latency estimate, per-group traces.
    """
    network = strategy.network
    if tuple(data.shape) != network.input_spec.shape:
        raise SimulationError(
            f"input shape {data.shape} != network input {network.input_spec.shape}"
        )
    if weights is None:
        weights = init_weights(network, rng)
    if quantize is not None:
        from repro.algorithms.fixed_point import quantize_model_weights

        weights = quantize_model_weights(weights, quantize)
        data = quantize.quantize(np.asarray(data, dtype=float))

    current = np.asarray(data, dtype=float)
    clock = 0.0
    traces: List[GroupTrace] = []
    for group_id, ((start, stop), design) in enumerate(
        zip(strategy.boundaries, strategy.designs)
    ):
        infos = [network[i] for i in range(start, stop)]
        impls = list(design.implementations)
        current = _group_forward(infos, impls, current, weights, quantize)
        trace = _group_timing(group_id, infos, impls, strategy.device, clock)
        traces.append(trace)
        clock = trace.end_cycle
    return SimulationResult(output=current, latency_cycles=clock, group_traces=traces)
