"""Fleet simulation: execute a PartitionPlan stage by stage.

Chains the existing single-device simulator across the fleet: every
stage's functional output (actual feature maps through the streaming
engines) feeds the next stage, with an explicit **transfer span** on the
link between them.  The functional result is therefore identical to
simulating the unpartitioned network — asserted in tests — while the
timeline gains one span per device and one per link, all in seconds so
heterogeneous clocks compose.

The timeline describes one image traversing the pipeline (latency).  In
steady state the fleet overlaps images: one emerges per *pipeline
interval* — the longest span — which is the number the partition DP
minimizes and the serving runtime sustains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.nn.functional import init_weights
from repro.sim.simulator import SimulationResult, simulate_strategy


@dataclass(frozen=True)
class StageSpan:
    """One device's busy window while the image crosses its stage."""

    stage_id: int
    device_name: str
    start_s: float
    end_s: float
    sim: SimulationResult

    @property
    def seconds(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class TransferSpan:
    """The cut tensor's journey across one inter-device link."""

    link_index: int
    tensor_bytes: int
    start_s: float
    end_s: float

    @property
    def seconds(self) -> float:
        return self.end_s - self.start_s


@dataclass
class FleetSimulationResult:
    """Outcome of simulating a partition plan on one input image."""

    output: np.ndarray
    stages: List[StageSpan]
    transfers: List[TransferSpan]

    @property
    def latency_seconds(self) -> float:
        """End-to-end: input enters stage 0, output leaves the tail."""
        return self.stages[-1].end_s

    @property
    def pipeline_interval_seconds(self) -> float:
        """Steady-state initiation interval: the longest span."""
        spans = [span.seconds for span in self.stages]
        spans.extend(span.seconds for span in self.transfers)
        return max(spans)

    @property
    def throughput_images_per_s(self) -> float:
        return 1.0 / self.pipeline_interval_seconds

    def report(self) -> str:
        lines = [
            f"fleet simulation: {self.latency_seconds * 1e3:.2f} ms latency, "
            f"{self.pipeline_interval_seconds * 1e3:.2f} ms pipeline interval "
            f"({self.throughput_images_per_s:.1f} img/s steady state)"
        ]
        for stage in self.stages:
            lines.append(
                f"  stage {stage.stage_id} on {stage.device_name}: "
                f"{stage.start_s * 1e3:.2f} -> {stage.end_s * 1e3:.2f} ms "
                f"({stage.sim.latency_cycles:,.0f} device cycles)"
            )
            for transfer in self.transfers:
                if transfer.link_index == stage.stage_id:
                    lines.append(
                        f"  link  {transfer.link_index}: "
                        f"{transfer.tensor_bytes / 1024:.0f} KB, "
                        f"{transfer.start_s * 1e3:.2f} -> "
                        f"{transfer.end_s * 1e3:.2f} ms"
                    )
        return "\n".join(lines)


def simulate_partition(
    plan,
    data: Optional[np.ndarray] = None,
    weights: Optional[dict] = None,
    seed: int = 0,
    faults=None,
    fault_seed: int = 0,
) -> FleetSimulationResult:
    """Run one image through a :class:`~repro.partition.plan.PartitionPlan`.

    Args:
        plan: The partition plan to execute.
        data: Input blob; a seeded random input otherwise.
        weights: Parameters for the *full* network (stage slices keep
            the original layer names, so one dict serves every stage);
            seeded random weights otherwise.
        seed: Controls the generated input and weights, exactly like
            :meth:`repro.toolflow.CompileResult.simulate`.
        faults: Optional :class:`repro.faults.FaultSpec` (or its string
            form) degrading the timeline: the image stalls through
            crash/down windows, compute stretches under brownouts, and
            transfers stretch under link degradation or stall through
            partitions.  Probabilistic (transient) faults are a serving
            concern and are ignored here — one image's functional pass
            either completes or, if a fault never lifts, raises
            :class:`~repro.errors.SimulationError`.  The functional
            output is untouched either way.
        fault_seed: Seed for the injector (kept for symmetry with the
            serving layer; the deterministic timeline never draws).
    """
    network = plan.network
    rng = np.random.default_rng(seed)
    if data is None:
        data = rng.normal(0, 0.5, network.input_spec.shape)
    if weights is None:
        weights = init_weights(network, rng)

    injector = None
    if faults is not None:
        from repro.faults import FaultInjector, FaultSpec

        spec = FaultSpec.parse(faults) if isinstance(faults, str) else faults
        if not spec.empty:
            injector = FaultInjector(
                spec,
                seed=fault_seed,
                replicas=1,
                links=len(plan.transfers),
                stages=len(plan.placements),
            )
    reference_hz = plan.fleet.reference_frequency_hz

    current = np.asarray(data, dtype=float)
    clock_s = 0.0
    stages: List[StageSpan] = []
    transfers: List[TransferSpan] = []
    for placement, transfer in _stage_transfer_pairs(plan):
        device = placement.device
        sim = simulate_strategy(placement.strategy, current, weights)
        start_s = clock_s
        seconds = device.cycles_to_seconds(sim.latency_cycles)
        if injector is not None:
            # The virtual clock of the fault schedule runs in the
            # fleet's reference cycles; convert at the boundary.
            start_cycle = injector.available_from(0, start_s * reference_hz)
            if np.isinf(start_cycle):
                raise SimulationError(
                    f"stage {placement.stage_id} never recovers under the "
                    f"fault schedule (permanent crash); the image cannot "
                    f"traverse the pipeline"
                )
            start_s = start_cycle / reference_hz
            seconds *= injector.service_scale(0, start_cycle)
        end_s = start_s + seconds
        stages.append(
            StageSpan(
                stage_id=placement.stage_id,
                device_name=device.name,
                start_s=start_s,
                end_s=end_s,
                sim=sim,
            )
        )
        clock_s = end_s
        current = sim.output
        if transfer is not None:
            seconds = transfer.seconds
            start_s = clock_s
            if injector is not None:
                index = transfer.link_index
                begin_cycle = injector.link_available_from(
                    index, start_s * reference_hz
                )
                if np.isinf(begin_cycle):
                    raise SimulationError(
                        f"link {index} never recovers under the fault "
                        f"schedule (permanent partition); the image cannot "
                        f"traverse the pipeline"
                    )
                start_s = begin_cycle / reference_hz
                seconds *= injector.link_scale(index, begin_cycle)
            transfers.append(
                TransferSpan(
                    link_index=transfer.link_index,
                    tensor_bytes=transfer.tensor_bytes,
                    start_s=start_s,
                    end_s=start_s + seconds,
                )
            )
            clock_s = start_s + seconds
    expected = network.output_shape
    if tuple(current.shape) != tuple(expected):
        raise SimulationError(
            f"fleet simulation produced shape {current.shape}, "
            f"network output is {expected}"
        )
    return FleetSimulationResult(
        output=current, stages=stages, transfers=transfers
    )


def _stage_transfer_pairs(plan) -> List[Tuple[object, Optional[object]]]:
    """Each placement with the transfer that follows it (None for the tail)."""
    pairs = []
    for index, placement in enumerate(plan.placements):
        transfer = (
            plan.transfers[index] if index < len(plan.transfers) else None
        )
        pairs.append((placement, transfer))
    return pairs
