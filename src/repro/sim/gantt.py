"""ASCII Gantt rendering of simulation traces.

Turns the per-layer timing of a :class:`~repro.sim.trace.GroupTrace`
into a text Gantt chart — the quickest way to *see* the inter-layer
pipeline overlap (paper Figure 2c) and where a stage idles waiting for
its pyramid to charge.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError
from repro.sim.trace import GroupTrace


def render_group_gantt(trace: GroupTrace, width: int = 64) -> str:
    """One row per layer: ``.`` before first output, ``#`` active span.

    The active span runs from each engine's first to last output row —
    overlapping ``#`` regions across rows are the dataflow pipeline at
    work.
    """
    if width < 10:
        raise SimulationError("gantt width must be at least 10 columns")
    span = trace.latency_cycles
    if span <= 0:
        raise SimulationError("group trace has no duration")
    lines = [
        f"group {trace.group_id}: {span:,.0f} cycles "
        f"(DRAM {trace.dram_utilization * 100:.0f}% busy)"
    ]
    name_width = max(len(t.layer_name) for t in trace.layers)
    for layer in trace.layers:
        start = int(width * layer.first_output_cycle / span)
        end = max(start + 1, int(width * layer.last_output_cycle / span))
        end = min(end, width)
        bar = "." * start + "#" * (end - start) + " " * (width - end)
        lines.append(
            f"  {layer.layer_name:<{name_width}} |{bar}| "
            f"{layer.busy_cycles:>12,.0f} busy"
        )
    return "\n".join(lines)


def render_gantt(traces: List[GroupTrace], width: int = 64) -> str:
    """Render every group of a simulation, in execution order."""
    if not traces:
        return "(no groups simulated)"
    return "\n".join(render_group_gantt(trace, width) for trace in traces)


def render_fleet_gantt(result, width: int = 64) -> str:
    """One row per fleet device plus one per link transfer.

    ``result`` is a :class:`repro.sim.fleet.FleetSimulationResult`; rows
    appear in pipeline order, so the staircase of ``#`` spans *is* the
    image's journey through the fleet, with ``=`` spans marking the cut
    tensor on each inter-device link.
    """
    if width < 10:
        raise SimulationError("gantt width must be at least 10 columns")
    total = result.latency_seconds
    if total <= 0:
        raise SimulationError("fleet timeline has no duration")

    def bar(start_s: float, end_s: float, mark: str) -> str:
        start = int(width * start_s / total)
        end = max(start + 1, int(width * end_s / total))
        end = min(end, width)
        return "." * start + mark * (end - start) + " " * (width - end)

    lines = [
        f"fleet timeline: {total * 1e3:.2f} ms latency, interval "
        f"{result.pipeline_interval_seconds * 1e3:.2f} ms"
    ]
    transfers = {t.link_index: t for t in result.transfers}
    name_width = max(
        [len(f"{s.device_name}[{s.stage_id}]") for s in result.stages]
        + [len(f"link[{t.link_index}]") for t in result.transfers] or [0]
    )
    for stage in result.stages:
        label = f"{stage.device_name}[{stage.stage_id}]"
        lines.append(
            f"  {label:<{name_width}} |{bar(stage.start_s, stage.end_s, '#')}| "
            f"{stage.seconds * 1e3:>9.2f} ms"
        )
        transfer = transfers.get(stage.stage_id)
        if transfer is not None:
            label = f"link[{transfer.link_index}]"
            lines.append(
                f"  {label:<{name_width}} "
                f"|{bar(transfer.start_s, transfer.end_s, '=')}| "
                f"{transfer.seconds * 1e3:>9.2f} ms"
            )
    return "\n".join(lines)
