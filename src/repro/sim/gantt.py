"""ASCII Gantt rendering of simulation traces.

Turns the per-layer timing of a :class:`~repro.sim.trace.GroupTrace`
into a text Gantt chart — the quickest way to *see* the inter-layer
pipeline overlap (paper Figure 2c) and where a stage idles waiting for
its pyramid to charge.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError
from repro.sim.trace import GroupTrace


def render_group_gantt(trace: GroupTrace, width: int = 64) -> str:
    """One row per layer: ``.`` before first output, ``#`` active span.

    The active span runs from each engine's first to last output row —
    overlapping ``#`` regions across rows are the dataflow pipeline at
    work.
    """
    if width < 10:
        raise SimulationError("gantt width must be at least 10 columns")
    span = trace.latency_cycles
    if span <= 0:
        raise SimulationError("group trace has no duration")
    lines = [
        f"group {trace.group_id}: {span:,.0f} cycles "
        f"(DRAM {trace.dram_utilization * 100:.0f}% busy)"
    ]
    name_width = max(len(t.layer_name) for t in trace.layers)
    for layer in trace.layers:
        start = int(width * layer.first_output_cycle / span)
        end = max(start + 1, int(width * layer.last_output_cycle / span))
        end = min(end, width)
        bar = "." * start + "#" * (end - start) + " " * (width - end)
        lines.append(
            f"  {layer.layer_name:<{name_width}} |{bar}| "
            f"{layer.busy_cycles:>12,.0f} busy"
        )
    return "\n".join(lines)


def render_gantt(traces: List[GroupTrace], width: int = 64) -> str:
    """Render every group of a simulation, in execution order."""
    if not traces:
        return "(no groups simulated)"
    return "\n".join(render_group_gantt(trace, width) for trace in traces)
