"""Model of the fused-layer CNN accelerator of Alwani et al. [MICRO'16].

The paper's comparison target [1].  Key modeling decisions (per the
paper's description of [1] and the MICRO'16 design itself):

* The given layer stack is fused as **one** tile-based group — [1]
  "does not provide the capability to explore the trade-off between
  performance and memory transfer", so it is a single design point
  replicated across transfer constraints.
* **Conventional convolution only** — [1] predates Winograd FPGA fusion.
* **Tile-based reuse buffers** instead of circular line buffers: the
  reusable tile halos are cached in dedicated buffers and "additional
  layers are inserted between original layers to manage these buffers",
  costing extra BRAM (halo + double buffering) and LUT/FF for the
  boundary-condition management the paper calls out.
* Parallelism per layer is balanced by the same bump-the-bottleneck
  allocation its authors describe (the pipeline runs at the slowest
  stage), over the same parallelism ladder as our engines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.errors import OptimizationError
from repro.hardware.device import FPGADevice
from repro.hardware.resources import ResourceVector
from repro.nn.network import Network
from repro.perf.cost import CostModel, EvalContext
from repro.perf.group import GroupDesign, compose_group, fifo_overhead
from repro.perf.implement import (
    Algorithm,
    Implementation,
    candidate_algorithms,
    candidate_parallelisms,
)

#: BRAM inflation of tile-based reuse buffers over circular line buffers
#: (halo duplication + ping-pong on tile boundaries).
TILE_BUFFER_BRAM_FACTOR = 1.6

#: Fabric cost of each inserted buffer-management layer.
_MANAGER_LUT = 1800
_MANAGER_FF = 2200


@dataclass(frozen=True)
class AlwaniDesign:
    """The [1] baseline design point for a layer stack."""

    design: GroupDesign
    device: FPGADevice

    @property
    def latency_cycles(self) -> int:
        return self.design.latency_cycles

    def latency_seconds(self) -> float:
        return self.device.cycles_to_seconds(self.latency_cycles)

    @property
    def feature_transfer_bytes(self) -> int:
        return self.design.feature_transfer_bytes

    @property
    def weight_transfer_bytes(self) -> int:
        return self.design.weight_transfer_bytes

    @property
    def resources(self) -> ResourceVector:
        return self.design.resources

    @property
    def total_ops(self) -> int:
        return self.design.ops

    def effective_gops(self) -> float:
        return self.design.effective_gops(self.device)


def _tile_buffer_overhead(impl: Implementation, boundary: bool) -> Implementation:
    """Apply [1]'s tile-buffer BRAM inflation and manager-layer logic.

    Only the data-reuse buffers are inflated (halo duplication); weight
    storage is common to both architectures.
    """
    inflated_lines = int(round(impl.line_brams * TILE_BUFFER_BRAM_FACTOR))
    bram = impl.resources.bram18k - impl.line_brams + inflated_lines
    extra_lut = _MANAGER_LUT if boundary else 0
    extra_ff = _MANAGER_FF if boundary else 0
    resources = ResourceVector(
        bram18k=bram,
        dsp=impl.resources.dsp,
        ff=impl.resources.ff + extra_ff,
        lut=impl.resources.lut + extra_lut,
    )
    return replace(impl, resources=resources, line_brams=inflated_lines)


def _conventional_algorithm(info) -> Algorithm:
    algorithms = candidate_algorithms(info)
    if Algorithm.CONVENTIONAL in algorithms:
        return Algorithm.CONVENTIONAL
    return algorithms[0]  # pool / LRN engines


def alwani_design(
    network: Network,
    device: FPGADevice,
    context: Optional[CostModel] = None,
) -> AlwaniDesign:
    """Build [1]'s single fused design for the whole layer stack.

    Allocation: every layer starts at minimum parallelism; repeatedly
    bump the slowest stage one ladder step while the device still fits
    (with tile-buffer overheads applied).  Stops at the balanced fixed
    point — the latency the MICRO'16 pipeline achieves.

    The bump-the-bottleneck loop rebuilds every stage per iteration, so
    routing through the shared evaluation layer (``context``) turns the
    rebuilds into signature-keyed cache hits.

    Raises:
        OptimizationError: If the stack does not fit even minimally.
    """
    cost = context if context is not None else EvalContext()
    infos = [network[i] for i in range(len(network))]
    algorithms = [_conventional_algorithm(info) for info in infos]
    ladders = [
        candidate_parallelisms(info, algo, device)[::-1]  # ascending
        for info, algo in zip(infos, algorithms)
    ]
    levels = [0] * len(infos)

    def build_one(idx: int, level: int) -> Implementation:
        raw = cost.implement(
            infos[idx], algorithms[idx], ladders[idx][level], device
        )
        return _tile_buffer_overhead(raw, boundary=idx > 0)

    def build(levels_now: Sequence[int]) -> List[Implementation]:
        return [build_one(idx, level) for idx, level in enumerate(levels_now)]

    def fits(impls: Sequence[Implementation]) -> bool:
        total = ResourceVector.total(i.resources for i in impls) + fifo_overhead(
            len(impls)
        )
        return total.fits(device.resources)

    current = build(levels)
    if not fits(current):
        raise OptimizationError(
            f"[1] baseline does not fit {device.name} even at minimum parallelism"
        )

    max_iterations = 10 * sum(len(ladder) for ladder in ladders)
    for _ in range(max_iterations):
        # Bump the slowest stage one ladder step; the pipeline runs at
        # the slowest stage, so bumping anything else cannot help.  If
        # the bump does not fit, steal resources from the stage with the
        # most slack (as long as it stays faster than the bottleneck).
        bottleneck = max(
            range(len(infos)), key=lambda idx: current[idx].compute_cycles
        )
        bottleneck_cycles = current[bottleneck].compute_cycles
        if levels[bottleneck] + 1 >= len(ladders[bottleneck]):
            break
        trial_levels = list(levels)
        trial_levels[bottleneck] += 1
        trial = build(trial_levels)
        while not fits(trial):
            donors = sorted(
                (
                    idx
                    for idx in range(len(infos))
                    if idx != bottleneck and trial_levels[idx] > 0
                ),
                key=lambda idx: trial[idx].compute_cycles,
            )
            stolen = False
            for donor in donors:
                slowdown = build_one(donor, trial_levels[donor] - 1)
                if slowdown.compute_cycles < bottleneck_cycles:
                    trial_levels[donor] -= 1
                    trial = build(trial_levels)
                    stolen = True
                    break
            if not stolen:
                break
        if not fits(trial):
            break
        new_bottleneck = max(i.compute_cycles for i in trial)
        if new_bottleneck > bottleneck_cycles:
            break  # the steal made things worse: stop at the fixed point
        levels = trial_levels
        current = trial

    design = compose_group(current, device)
    return AlwaniDesign(design=design, device=device)
