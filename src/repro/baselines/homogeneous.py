"""Homogeneous-design and unfused ablation baselines.

The paper's motivation (Section 2.2) is that "homogeneous design using
either conventional or Winograd algorithm will only exhaust one dimension
of resource".  These baselines quantify that:

* :func:`homogeneous_optimize` — the full fusion DP but with every conv
  layer pinned to one algorithm (layers the algorithm cannot serve, e.g.
  Winograd on a stride-4 conv, fall back to their only legal engine);
* :func:`unfused_optimize` — every layer is its own group (the classic
  layer-by-layer accelerator), quantifying what fusion alone buys.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import OptimizationError
from repro.hardware.device import FPGADevice
from repro.nn.layers import ConvLayer
from repro.nn.network import Network
from repro.optimizer.branch_and_bound import GroupSearch
from repro.optimizer.dp import FrontierOptimizer
from repro.optimizer.strategy import Strategy
from repro.perf.cost import CostModel
from repro.perf.implement import Algorithm


def _pin_algorithm(algorithm: Algorithm):
    def allow(info, candidate: Algorithm) -> bool:
        if not isinstance(info.layer, ConvLayer):
            return True
        return candidate == algorithm

    return allow


def homogeneous_optimize(
    network: Network,
    device: FPGADevice,
    transfer_constraint_bytes: int,
    algorithm: Algorithm,
    context: Optional[CostModel] = None,
) -> Strategy:
    """Optimal fusion strategy with a single convolution algorithm.

    Conv layers that cannot legally use ``algorithm`` (Winograd needs
    stride 1) keep their full menu — matching how a homogeneous-Winograd
    accelerator still needs a conventional engine for such layers.
    """
    if algorithm not in (Algorithm.CONVENTIONAL, Algorithm.WINOGRAD):
        raise OptimizationError(f"{algorithm} is not a convolution algorithm")
    optimizer = FrontierOptimizer(
        network, device, algorithm_filter=_pin_algorithm(algorithm),
        context=context,
    )
    plan = optimizer.best_plan(transfer_constraint_bytes)
    strategy = optimizer.materialize(plan)
    strategy.validate(transfer_constraint_bytes)
    return strategy


def unfused_optimize(
    network: Network,
    device: FPGADevice,
    context: Optional[CostModel] = None,
) -> Strategy:
    """Best layer-by-layer design: every layer forms its own group.

    This is the paper's "without fusion architecture" reference — for
    the VGG prefix it needs the full (tens of MB) feature-map transfer
    but gives every layer the whole device.
    """
    search = GroupSearch(network, device, context=context)
    boundaries: List[Tuple[int, int]] = []
    designs = []
    for index in range(len(network)):
        design = search.fusion(index, index + 1)
        if design is None:
            raise OptimizationError(
                f"layer {network[index].name!r} does not fit {device.name} alone"
            )
        boundaries.append((index, index + 1))
        designs.append(design)
    return Strategy(
        network, device, boundaries, designs,
        telemetry=search.context.stats,
    )
