"""Recompute-vs-reuse analysis for fused pyramids.

Alwani et al. [MICRO'16] — the paper's baseline [1] — devote "a detailed
discussion ... about whether to reuse or recompute these values": the
pyramids of adjacent output elements overlap, and a fused design either
caches the overlap (reuse buffers / our line buffers) or recomputes it.

This module quantifies that choice for any fusion group:

* the per-layer *recompute factor* — how many times each intermediate
  element would be computed if the group kept no reuse state at all
  (sliding pyramids re-derive their whole cone per output row);
* the total extra MACs recomputation costs vs the reuse design;
* the BRAM the reuse buffers need (what recomputation saves).

The circular-line-buffer architecture makes reuse essentially free,
which is the paper's argument for it; the numbers here make the
comparison concrete (and are exercised by the ablation tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arch.fusion import FusionGroup, layer_window
from repro.arch.line_buffer import line_buffer_brams
from repro.errors import ShapeError
from repro.nn.layers import ConvLayer
from repro.nn.network import Network


@dataclass(frozen=True)
class LayerRecompute:
    """Recompute economics of one layer inside a fused group.

    Attributes:
        layer_name: The layer.
        rows_needed_per_output_row: Rows of this layer's *output* one
            group-output row depends on (the pyramid level above it).
        stride_rows: Rows of its output newly required per group-output
            row (the pyramid's slide).
        recompute_factor: rows_needed / stride — how many group-output
            rows each of this layer's rows serves, i.e. how many times
            it is recomputed without reuse.
        reuse_macs: MACs to compute each output row once (reuse design).
        recompute_macs: MACs if every pyramid recomputes its full cone.
        reuse_brams: Line-buffer BRAM the reuse design spends here.
    """

    layer_name: str
    rows_needed_per_output_row: int
    stride_rows: int
    recompute_factor: float
    reuse_macs: int
    recompute_macs: int
    reuse_brams: int


def analyze_group(network: Network, start: int, stop: int) -> List[LayerRecompute]:
    """Per-layer recompute economics for fusing layers ``[start, stop)``."""
    group = FusionGroup(network, start, stop)
    levels = group.pyramid()
    if not levels:
        raise ShapeError("empty fusion group")

    results: List[LayerRecompute] = []
    # level l's input_rows_per_group_row is what the layer *below* must
    # produce; the group's own output slides one row at a time.
    for idx, level in enumerate(levels):
        info = level.info
        # Rows of this layer's OUTPUT needed per group output row: the
        # next level's input requirement (or 1 for the last layer).
        if idx + 1 < len(levels):
            rows_needed = levels[idx + 1].input_rows_per_group_row
            slide = 1
            for deeper in levels[idx + 1 :]:
                slide *= deeper.stride_rows
        else:
            rows_needed = 1
            slide = 1
        recompute_factor = rows_needed / max(slide, 1)
        layer = info.layer
        if isinstance(layer, ConvLayer):
            total_macs = layer.macs(info.input_shape)
        else:
            total_macs = info.ops
        out_rows = max(info.output_shape[1], 1)
        macs_per_row = total_macs // out_rows
        window, _stride = layer_window(layer)
        in_c, _, in_w = info.input_shape
        results.append(
            LayerRecompute(
                layer_name=info.name,
                rows_needed_per_output_row=rows_needed,
                stride_rows=slide,
                recompute_factor=recompute_factor,
                reuse_macs=total_macs,
                recompute_macs=int(total_macs * recompute_factor),
                reuse_brams=line_buffer_brams(
                    window + level.stride_rows, in_w, in_c
                ),
            )
        )
    return results


@dataclass(frozen=True)
class GroupRecomputeSummary:
    """Totals over a group's recompute analysis."""

    total_reuse_macs: int
    total_recompute_macs: int
    total_reuse_brams: int

    @property
    def recompute_overhead(self) -> float:
        """Extra work factor of the no-reuse design (>= 1)."""
        if self.total_reuse_macs == 0:
            return 1.0
        return self.total_recompute_macs / self.total_reuse_macs


def summarize(layers: List[LayerRecompute]) -> GroupRecomputeSummary:
    return GroupRecomputeSummary(
        total_reuse_macs=sum(layer.reuse_macs for layer in layers),
        total_recompute_macs=sum(layer.recompute_macs for layer in layers),
        total_reuse_brams=sum(layer.reuse_brams for layer in layers),
    )
