"""Comparison baselines.

:mod:`repro.baselines.alwani` models the fused-layer CNN accelerator of
Alwani et al. [MICRO'16] — the paper's reference point [1] in Figure 5
and Table 1.  :mod:`repro.baselines.homogeneous` provides the ablation
designs: single-algorithm (all-conventional / all-Winograd) strategies
and the completely unfused layer-by-layer design.
"""

from repro.baselines.alwani import alwani_design, AlwaniDesign
from repro.baselines.homogeneous import homogeneous_optimize, unfused_optimize
from repro.baselines.recompute import analyze_group, summarize

__all__ = [
    "AlwaniDesign",
    "alwani_design",
    "analyze_group",
    "homogeneous_optimize",
    "summarize",
    "unfused_optimize",
]
