"""Plain-text table formatting shared by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    Column widths adapt to content; numeric cells are right-aligned.
    """
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for original, row in zip(str_rows, str_rows):
        cells = []
        for idx, cell in enumerate(row):
            if _is_numeric(cell):
                cells.append(cell.rjust(widths[idx]))
            else:
                cells.append(cell.ljust(widths[idx]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "").replace("x", "")
    return stripped.isdigit()


def format_ratio(value: float) -> str:
    """Speedup-style formatting: '1.99x'."""
    return f"{value:.2f}x"


def format_energy(joules: float) -> str:
    """Engineering-notation joules: '3.10 mJ', '420.00 uJ', '1.20 J'.

    One formatter shared by ``repro compile --stats``, the capacity
    planner's reports and the benchmarks, so energy numbers are always
    comparable at a glance.
    """
    magnitude = abs(joules)
    for factor, unit in ((1.0, "J"), (1e-3, "mJ"), (1e-6, "uJ")):
        if magnitude >= factor:
            return f"{joules / factor:.2f} {unit}"
    return f"{joules / 1e-9:.2f} nJ"
