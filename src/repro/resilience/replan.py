"""Online re-partitioning over the surviving devices of a pipeline.

When the :class:`~repro.resilience.controller.RecoveryController`
confirms a pipeline stage's device dead, the fleet does not fall back to
a stale plan — it re-runs the same cut-point DP that produced the
original plan, restricted to the survivors.  Routed through a warm
:mod:`repro.dse` cost store (or a shared in-memory context) every
(layer-range, device) cost the original search evaluated is a cache
hit, so the wall-clock price of a re-plan is milliseconds; its
*virtual-clock* price is the policy's ``replan_latency_s`` plus the new
plan's weight handover (:func:`handover_cycles`).

The survivor fleet keeps the original device order with the dead device
spliced out; the link that fed it is merged away (:func:`surviving_fleet`),
mirroring how a board would be bypassed on the physical interconnect.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ReproError
from repro.partition.fleet import DeviceFleet


def surviving_fleet(fleet: DeviceFleet, dead_index: int) -> DeviceFleet:
    """``fleet`` with device ``dead_index`` (and its feeding link) removed.

    Removing an interior device merges its two adjacent links into the
    downstream one; removing an endpoint just drops the endpoint's only
    link.  Raises when the index is out of range or no device survives.
    """
    n = len(fleet.devices)
    if not 0 <= dead_index < n:
        raise ReproError(
            f"dead device index {dead_index} out of range for "
            f"{n}-device fleet"
        )
    if n < 2:
        raise ReproError("no surviving devices to re-plan over")
    devices = [d for i, d in enumerate(fleet.devices) if i != dead_index]
    links = list(fleet.links)
    if dead_index == 0:
        links = links[1:]
    elif dead_index == n - 1:
        links = links[:-1]
    else:
        links = links[: dead_index - 1] + links[dead_index:]
    name = f"{fleet.name}-minus{dead_index}" if fleet.name else None
    return DeviceFleet(devices, links=links, name=name)


def replan_survivors(
    plan,
    dead_stage: int,
    transfer_constraint_bytes: Optional[int] = None,
    context=None,
    store=None,
    workers: Optional[int] = None,
):
    """Re-run the cut-point DP over the survivors of ``plan``.

    ``dead_stage`` names the stage whose device died; the new plan
    covers the *whole* network over the remaining devices.  Pass the
    original search's ``context`` or ``store`` to make the re-plan a
    warm-cache operation; a worker count only changes wall time, never
    the plan (the DP is deterministic — asserted in the tests).
    """
    from repro.optimizer.dp import _flush_context, _store_context
    from repro.partition.cut import partition_network

    placements = plan.placements
    if not 0 <= dead_stage < len(placements):
        raise ReproError(
            f"dead stage {dead_stage} out of range for "
            f"{len(placements)}-stage plan"
        )
    dead_device = placements[dead_stage].device_index
    survivors = surviving_fleet(plan.fleet, dead_device)
    if transfer_constraint_bytes is None:
        element_bytes = min(d.element_bytes for d in survivors.devices)
        transfer_constraint_bytes = plan.network.feature_map_bytes(
            element_bytes
        )
    context = _store_context(context, store)
    try:
        return partition_network(
            plan.network,
            survivors,
            transfer_constraint_bytes=transfer_constraint_bytes,
            context=context,
            workers=workers,
        )
    finally:
        _flush_context(context)


def handover_cycles(plan, reference_hz: Optional[float] = None) -> float:
    """Virtual-clock cost of staging the new plan's weights.

    Every surviving device loads its stage's weights from host DRAM in
    parallel, so the handover is bounded by the slowest load:
    ``max(stage weight bytes / device bandwidth)``, expressed in cycles
    of ``reference_hz`` (the fleet's reference clock by default).
    """
    if reference_hz is None:
        reference_hz = plan.fleet.reference_frequency_hz
    seconds = max(
        (
            p.strategy.weight_transfer_bytes / p.device.bandwidth_bytes_per_s
            for p in plan.placements
        ),
        default=0.0,
    )
    return seconds * reference_hz


def replan_cycles(policy, frequency_hz: float) -> float:
    """The policy's re-plan latency on the virtual clock."""
    if math.isinf(policy.replan_latency_s):
        raise ReproError("replan latency must be finite")
    return policy.replan_latency_s * frequency_hz
