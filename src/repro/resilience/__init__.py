"""repro.resilience: the self-healing control plane of the serving loop.

The serving schedulers (:mod:`repro.serve`, :mod:`repro.capacity`) run a
deterministic event loop on a virtual clock; this package adds the
*online* half of fault tolerance on the same clock:

* :class:`HealthMonitor` — per-replica EWMA latency / failure tracking
  driving a hysteretic up/degraded/down state machine (no flapping on
  transient blips);
* :class:`RecoveryController` — walks a configurable degradation
  ladder under sustained degradation (shrink batches → warm-swap to a
  pre-compiled fallback strategy → shed load / low-priority tenants)
  and, on confirmed device death in a pipelined fleet, triggers online
  re-partitioning over the surviving devices;
* :func:`replan_survivors` — the re-partitioning itself: the same
  cut-point DP that produced the plan, run over the survivor fleet
  through a warm cost store so a re-plan costs milliseconds of wall
  time (its virtual-clock price is the policy's re-plan latency plus
  the new plan's weight handover).

Everything is deterministic: the same seed + fault spec + policy yields
a bit-identical decision log, exportable as a checksummed
``recovery_log`` artifact (:func:`save_recovery_log`), and a zero-fault
run with the control plane enabled is bit-identical to the plain
scheduler — the monitor observes but never acts.  See
``docs/resilience.md``.
"""

from repro.resilience.controller import (
    RECOVERY_LOG_KIND,
    LadderRung,
    RecoveryController,
    RecoveryEvent,
    ResilienceError,
    ResiliencePolicy,
    build_ladder,
    recovery_log_payload,
    save_recovery_log,
)
from repro.resilience.health import HealthMonitor, ReplicaState
from repro.resilience.replan import (
    handover_cycles,
    replan_cycles,
    replan_survivors,
    surviving_fleet,
)

__all__ = [
    "RECOVERY_LOG_KIND",
    "HealthMonitor",
    "LadderRung",
    "RecoveryController",
    "RecoveryEvent",
    "ReplicaState",
    "ResilienceError",
    "ResiliencePolicy",
    "build_ladder",
    "handover_cycles",
    "recovery_log_payload",
    "replan_cycles",
    "replan_survivors",
    "save_recovery_log",
    "surviving_fleet",
]
