"""Per-replica health tracking: EWMA signals + a hysteretic state machine.

The monitor consumes exactly what the scheduler's event loop already
produces — one :class:`~repro.serve.runtime.BatchAttempt` per dispatch —
and distils it into three per-replica signals:

* a failure EWMA (fraction of recent attempts that failed),
* a latency-inflation EWMA (attempt span over the fault-free baseline
  for the same batch size, so brownouts show up as a ratio > 1), and
* consecutive success/failure streaks.

The streaks drive a hysteretic ``up -> degraded -> up`` transition pair:
entering ``degraded`` takes :attr:`ResiliencePolicy.degrade_after_failures`
*consecutive* failures (or a sustained latency-inflation EWMA), leaving
it takes :attr:`ResiliencePolicy.recover_after_successes` consecutive
successes — an isolated transient blip moves neither edge, so the state
machine cannot flap.  ``down`` is reserved for *confirmed* device death
(an injector outage at least ``confirm_down_cycles`` long) and is
entered exactly once per replica.

Pure bookkeeping: observing a fault-free run never changes any decision
the scheduler makes, which is what keeps a zero-fault run with the
control plane enabled bit-identical to the plain scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class ReplicaState(str, Enum):
    """Hysteretic health state of one replica."""

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"


@dataclass
class ReplicaHealth:
    """The monitor's running signals for one replica."""

    state: ReplicaState = ReplicaState.UP
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    failure_ewma: float = 0.0
    latency_ewma: float = 1.0  # attempt span / fault-free baseline
    attempts: int = 0
    failures: int = 0
    completed_requests: int = 0  # goodput bookkeeping

    def to_dict(self) -> dict:
        return {
            "state": self.state.value,
            "attempts": self.attempts,
            "failures": self.failures,
            "failure_ewma": self.failure_ewma,
            "latency_ewma": self.latency_ewma,
            "completed_requests": self.completed_requests,
        }


@dataclass
class HealthMonitor:
    """Tracks every replica's health from the attempt stream.

    Args:
        alpha: EWMA smoothing factor for the failure / latency signals.
        degrade_after_failures: Consecutive failures that flip a replica
            ``up -> degraded``.
        recover_after_successes: Consecutive successes that flip it
            back ``degraded -> up`` (the hysteresis gap).
        latency_degrade_factor: Latency-inflation EWMA threshold that
            also counts as degradation (brownout detection); ``None``
            disables the latency trigger (pipelined/shared fleets,
            where attempt spans legitimately include queueing).
    """

    num_replicas: int
    alpha: float = 0.3
    degrade_after_failures: int = 2
    recover_after_successes: int = 8
    latency_degrade_factor: Optional[float] = 1.5
    replicas: Dict[int, ReplicaHealth] = field(default_factory=dict)

    def health(self, replica: int) -> ReplicaHealth:
        if replica not in self.replicas:
            self.replicas[replica] = ReplicaHealth()
        return self.replicas[replica]

    def state(self, replica: int) -> ReplicaState:
        return self.health(replica).state

    def observe_success(
        self,
        replica: int,
        batch_size: int,
        latency_ratio: Optional[float] = None,
    ) -> Optional[str]:
        """Fold one successful attempt in; returns ``"recovered"`` or
        ``"degraded"`` on a state transition, else None.

        ``latency_ratio`` is the attempt span over the fault-free
        baseline for the same batch size (1.0 on a healthy replica); a
        sustained ratio above ``latency_degrade_factor`` degrades the
        replica even though nothing failed — that is how brownouts are
        caught.
        """
        h = self.health(replica)
        h.attempts += 1
        h.completed_requests += batch_size
        h.consecutive_successes += 1
        h.consecutive_failures = 0
        h.failure_ewma *= 1.0 - self.alpha
        if latency_ratio is not None:
            h.latency_ewma += self.alpha * (latency_ratio - h.latency_ewma)
        if h.state is ReplicaState.DOWN:
            return None
        inflated = (
            self.latency_degrade_factor is not None
            and latency_ratio is not None
            and h.latency_ewma >= self.latency_degrade_factor
        )
        if h.state is ReplicaState.UP and inflated:
            h.state = ReplicaState.DEGRADED
            return "degraded"
        if (
            h.state is ReplicaState.DEGRADED
            and not inflated
            and h.consecutive_successes >= self.recover_after_successes
        ):
            h.state = ReplicaState.UP
            return "recovered"
        return None

    def observe_failure(self, replica: int) -> Optional[str]:
        """Fold one failed attempt in; returns ``"degraded"`` on the
        up -> degraded edge, else None."""
        h = self.health(replica)
        h.attempts += 1
        h.failures += 1
        h.consecutive_failures += 1
        h.consecutive_successes = 0
        h.failure_ewma += self.alpha * (1.0 - h.failure_ewma)
        if (
            h.state is ReplicaState.UP
            and h.consecutive_failures >= self.degrade_after_failures
        ):
            h.state = ReplicaState.DEGRADED
            return "degraded"
        return None

    def mark_down(self, replica: int) -> bool:
        """Confirm device death; True the first time for this replica."""
        h = self.health(replica)
        if h.state is ReplicaState.DOWN:
            return False
        h.state = ReplicaState.DOWN
        return True

    def mark_rebuilt(self, replica: int) -> None:
        """A re-planned replacement took over: back to ``up``, streaks
        cleared (the new pipeline has no history)."""
        h = self.health(replica)
        h.state = ReplicaState.UP
        h.consecutive_failures = 0
        h.consecutive_successes = 0
        h.failure_ewma = 0.0
        h.latency_ewma = 1.0

    def report(self) -> dict:
        """Deterministic JSON-safe snapshot of every observed replica."""
        return {
            str(r): self.replicas[r].to_dict()
            for r in sorted(self.replicas)
        }
