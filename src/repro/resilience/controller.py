"""RecoveryController: the degradation ladder and the decision log.

The controller sits inside the scheduler's event loop.  Every dispatched
batch is reported to :meth:`RecoveryController.observe`; the scheduler
then drains :meth:`pop_actions` and applies whatever the controller
decided — shrink the batcher, warm-swap the fallback strategy, tighten
admission, or rebuild a dead pipeline on a survivor plan.  Keeping the
*decision* here and the *mechanism* in the scheduler means one
controller serves flat fleets, pipelined fleets and multi-tenant fleets
alike.

The degradation ladder is precomputed at attach time from the policy
and the scheduler's base knobs (:func:`build_ladder`), so each rung's
resource demand is a static, testable fact: rungs are monotone — no
rung ever demands more than the one before it (property-tested in
``tests/test_resilience.py``).

Every decision appends one :class:`RecoveryEvent` in event-loop order.
The list is the **recovery log**: with the same seed, fault spec and
policy it is bit-identical across runs (and across ``--workers``
settings of the re-planner), and it travels as a checksummed
``recovery_log`` artifact through the standard envelope
(:func:`save_recovery_log` / ``repro check``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ReproError
from repro.resilience.health import HealthMonitor, ReplicaState

#: Artifact kind of an exported recovery log.
RECOVERY_LOG_KIND = "recovery_log"


class ResilienceError(ReproError):
    """Invalid resilience policy or control-plane misuse."""


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the health monitor and the degradation ladder.

    Attributes:
        ewma_alpha: Smoothing of the failure / latency EWMAs.
        degrade_after_failures: Consecutive failures flipping a replica
            up -> degraded (>= 2 keeps isolated blips from flapping).
        recover_after_successes: Consecutive successes flipping it back.
        latency_degrade_factor: Latency-inflation EWMA threshold that
            counts as degradation (brownout detection) on fleets whose
            attempt spans are pure service time.
        confirm_down_cycles: An injector outage at least this long
            confirms device death (default: only permanent outages).
        shrink_factor: Rung 1 multiplies ``max_batch`` by this.
        min_batch: Floor of the shrink rung.
        shed_queue: Admission bound the shed rung tightens to.
        replan_latency_s: Wall-clock price of one warm re-plan, charged
            on the virtual clock at the fleet's reference frequency
            (the DP re-runs through a warm cost store, so milliseconds).
        max_ladder_steps: Optional cap on how many rungs a run may walk.
    """

    ewma_alpha: float = 0.3
    degrade_after_failures: int = 2
    recover_after_successes: int = 8
    latency_degrade_factor: float = 1.5
    confirm_down_cycles: float = math.inf
    shrink_factor: float = 0.5
    min_batch: int = 1
    shed_queue: int = 4
    replan_latency_s: float = 0.005
    max_ladder_steps: Optional[int] = None

    def __post_init__(self):
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ResilienceError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.degrade_after_failures < 1:
            raise ResilienceError("degrade_after_failures must be >= 1")
        if self.recover_after_successes < 1:
            raise ResilienceError("recover_after_successes must be >= 1")
        if self.latency_degrade_factor <= 1.0:
            raise ResilienceError(
                f"latency_degrade_factor must be > 1, "
                f"got {self.latency_degrade_factor}"
            )
        if self.confirm_down_cycles <= 0:
            raise ResilienceError("confirm_down_cycles must be positive")
        if not 0.0 < self.shrink_factor <= 1.0:
            raise ResilienceError(
                f"shrink_factor must be in (0, 1], got {self.shrink_factor}"
            )
        if self.min_batch < 1:
            raise ResilienceError("min_batch must be >= 1")
        if self.shed_queue < 1:
            raise ResilienceError("shed_queue must be >= 1")
        if self.replan_latency_s < 0:
            raise ResilienceError("replan_latency_s must be >= 0")
        if self.max_ladder_steps is not None and self.max_ladder_steps < 0:
            raise ResilienceError("max_ladder_steps must be >= 0")

    def to_dict(self) -> dict:
        return {
            "ewma_alpha": self.ewma_alpha,
            "degrade_after_failures": self.degrade_after_failures,
            "recover_after_successes": self.recover_after_successes,
            "latency_degrade_factor": self.latency_degrade_factor,
            "confirm_down_cycles": (
                None
                if math.isinf(self.confirm_down_cycles)
                else self.confirm_down_cycles
            ),
            "shrink_factor": self.shrink_factor,
            "min_batch": self.min_batch,
            "shed_queue": self.shed_queue,
            "replan_latency_s": self.replan_latency_s,
            "max_ladder_steps": self.max_ladder_steps,
        }


@dataclass(frozen=True)
class LadderRung:
    """One degradation step: the fleet-wide knobs in force at this rung.

    ``demand()`` is the rung's resource-demand vector — (batch slots,
    queue slots, model tier) — compared componentwise in the
    monotonicity property: walking down the ladder never *increases*
    any component.
    """

    kind: str  # shrink_batch | fallback_swap | shed
    max_batch: int
    max_queue: Optional[int]  # None = unbounded admission
    fallback: bool  # serving the lower-resource fallback strategy?

    def demand(self) -> tuple:
        queue = math.inf if self.max_queue is None else self.max_queue
        return (self.max_batch, queue, 0 if self.fallback else 1)

    def describe(self) -> str:
        parts = [f"max_batch={self.max_batch}"]
        if self.fallback:
            parts.append("fallback strategy")
        if self.max_queue is not None:
            parts.append(f"max_queue={self.max_queue}")
        return f"{self.kind} ({', '.join(parts)})"


def build_ladder(
    policy: ResiliencePolicy,
    base_max_batch: int,
    base_max_queue: Optional[int],
    fallback_available: bool,
) -> List[LadderRung]:
    """The degradation ladder for one scheduler's base configuration.

    Rung order follows the escalation story: shrink batches first (cheap
    and reversible), warm-swap the pre-compiled fallback strategy next
    (priced at its weight-transfer cost), shed load last.  The fallback
    rung only exists when a fallback was compiled at plan time; each
    rung's demand vector is componentwise <= its predecessor's by
    construction.
    """
    if base_max_batch < 1:
        raise ResilienceError(f"max_batch must be >= 1, got {base_max_batch}")
    rungs: List[LadderRung] = []
    batch = max(policy.min_batch, int(base_max_batch * policy.shrink_factor))
    batch = min(batch, base_max_batch)  # a floor above base never grows it
    queue = base_max_queue
    rungs.append(LadderRung("shrink_batch", batch, queue, fallback=False))
    if fallback_available:
        rungs.append(LadderRung("fallback_swap", batch, queue, fallback=True))
    shed_queue = (
        policy.shed_queue
        if queue is None
        else min(queue, policy.shed_queue)
    )
    rungs.append(
        LadderRung("shed", batch, shed_queue, fallback=fallback_available)
    )
    if policy.max_ladder_steps is not None:
        rungs = rungs[: policy.max_ladder_steps]
    return rungs


@dataclass(frozen=True)
class RecoveryEvent:
    """One control-plane decision, stamped on the virtual clock."""

    cycle: float
    kind: str  # degraded | recovered | ladder | down | replan | rebuild-failed
    replica: Optional[int]
    detail: str

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "replica": self.replica,
            "detail": self.detail,
        }


@dataclass
class _Action:
    """A decision waiting for the scheduler to apply it."""

    kind: str  # shrink_batch | fallback_swap | shed | rebuild
    cycle: float
    value: Optional[int] = None
    replica: Optional[int] = None


class RecoveryController:
    """One serving run's control plane (fresh per ``run()`` call).

    The scheduler feeds it attempts (:meth:`observe`) and drains its
    decisions (:meth:`pop_actions`); ``max_batch`` / ``max_queue`` track
    the currently active rung and are read by the scheduler at batching
    and admission points.  Every mutation appends to :attr:`events` in
    event-loop order — the deterministic recovery log.
    """

    def __init__(
        self,
        policy: ResiliencePolicy,
        num_replicas: int,
        base_max_batch: int,
        base_max_queue: Optional[int],
        fallback_available: bool = False,
        latency_trigger: bool = True,
        baseline_fn: Optional[Callable[[int], float]] = None,
    ):
        self.policy = policy
        self.monitor = HealthMonitor(
            num_replicas=num_replicas,
            alpha=policy.ewma_alpha,
            degrade_after_failures=policy.degrade_after_failures,
            recover_after_successes=policy.recover_after_successes,
            latency_degrade_factor=(
                policy.latency_degrade_factor if latency_trigger else None
            ),
        )
        self.ladder = build_ladder(
            policy, base_max_batch, base_max_queue, fallback_available
        )
        self.rung_index = -1  # -1: base configuration, no rung active
        self.max_batch = base_max_batch
        self.max_queue = base_max_queue
        self._base_max_queue = base_max_queue
        self.fallback_active = False
        self.rebuilt: Dict[int, float] = {}  # replica -> ready cycle
        self.events: List[RecoveryEvent] = []
        self._actions: List[_Action] = []
        self._down_at: Dict[int, float] = {}
        self._baseline_default = baseline_fn
        self._baseline_overrides: Dict[int, Callable[[int], float]] = {}
        self._archived_stats: List = []
        self._next_stats_base: Optional[int] = None

    # -- the observation path ------------------------------------------------

    def observe(
        self, replica: int, attempt, batch_size: int, injector=None
    ) -> None:
        """Fold one dispatched batch's outcome into the health model.

        On a fault-free attempt this is pure bookkeeping.  A failure
        advances the replica's streaks and may (a) degrade it and walk
        the ladder one rung, and (b) — for a crash whose injector outage
        is at least ``confirm_down_cycles`` — confirm device death and
        emit a rebuild action.
        """
        if attempt.ok:
            ratio = None
            fn = self._baseline_overrides.get(replica, self._baseline_default)
            if fn is not None:
                base = fn(batch_size)
                if base > 0:
                    ratio = (attempt.end_cycle - attempt.start_cycle) / base
            edge = self.monitor.observe_success(replica, batch_size, ratio)
            if edge == "degraded":
                self._event(
                    attempt.end_cycle,
                    "degraded",
                    replica,
                    f"latency inflation ewma "
                    f"{self.monitor.health(replica).latency_ewma:.2f}x",
                )
                self._escalate(attempt.end_cycle)
            elif edge == "recovered":
                self._event(
                    attempt.end_cycle, "recovered", replica,
                    f"{self.monitor.health(replica).consecutive_successes} "
                    f"consecutive successes",
                )
            return
        edge = self.monitor.observe_failure(replica)
        if edge == "degraded":
            h = self.monitor.health(replica)
            self._event(
                attempt.end_cycle,
                "degraded",
                replica,
                f"{h.consecutive_failures} consecutive failures "
                f"({getattr(attempt, 'failure', None) or 'failed'})",
            )
            self._escalate(attempt.end_cycle)
        if getattr(attempt, "failure", None) == "crash" and injector is not None:
            resume = injector.available_from(replica, attempt.end_cycle)
            if resume - attempt.end_cycle >= self.policy.confirm_down_cycles:
                self.confirm_down(replica, attempt.end_cycle, resume)

    def confirm_down(
        self, replica: int, cycle: float, resume: float
    ) -> bool:
        """Confirm device death (idempotent) and request a rebuild."""
        if not self.monitor.mark_down(replica):
            return False
        self._down_at[replica] = cycle
        outage = (
            "permanent"
            if math.isinf(resume)
            else f"down until cycle {resume:,.0f}"
        )
        self._event(cycle, "down", replica, f"confirmed dead: {outage}")
        self._actions.append(_Action("rebuild", cycle, replica=replica))
        return True

    def check_dead_fleet(self, fleet, clock: float, injector) -> bool:
        """Dead-fleet hook: confirm deaths the attempt path never saw.

        A replica whose crash window opens while it sits idle produces
        no failed attempt — the scheduler just finds the whole fleet
        unavailable.  Confirm every such death here so the rebuild path
        still fires.  Returns True when any new death was confirmed.
        """
        if injector is None:
            return False
        confirmed = False
        for replica in fleet:
            rid = replica.replica_id
            if rid in self.rebuilt:
                continue
            resume = injector.available_from(
                rid, max(clock, replica.busy_until)
            )
            if resume - clock >= self.policy.confirm_down_cycles:
                confirmed |= self.confirm_down(rid, clock, resume)
        return confirmed

    # -- the decision path ---------------------------------------------------

    def pop_actions(self) -> List[_Action]:
        actions, self._actions = self._actions, []
        return actions

    def _escalate(self, cycle: float) -> None:
        nxt = self.rung_index + 1
        if nxt >= len(self.ladder):
            return
        self.rung_index = nxt
        rung = self.ladder[nxt]
        self.max_batch = rung.max_batch
        self.max_queue = rung.max_queue
        if rung.kind == "fallback_swap":
            self.fallback_active = True
        self._event(
            cycle, "ladder", None, f"rung {nxt + 1}: {rung.describe()}"
        )
        self._actions.append(
            _Action(rung.kind, cycle, value=rung.max_batch)
        )

    def tenant_queue_limit(
        self, base: Optional[int], protected: bool
    ) -> Optional[int]:
        """Admission bound for one tenant under the current rung.

        The shed rung targets *low-priority* tenants — those without a
        WFQ starvation floor (``min_share == 0``).  Floor-protected
        tenants keep their base admission bound: the floor is the
        protection mechanism.
        """
        if protected:
            return base
        return self.max_queue

    # -- rebuild bookkeeping (pipelined fleets) ------------------------------

    def note_rebuilt(
        self, replica: int, cycle: float, ready: float, detail: str
    ) -> None:
        self.rebuilt[replica] = ready
        self.monitor.mark_rebuilt(replica)
        self._event(cycle, "replan", replica, detail)

    def note_rebuild_failed(
        self, replica: int, cycle: float, reason: str
    ) -> None:
        self._event(cycle, "rebuild-failed", replica, reason)

    def set_default_baseline(self, fn: Callable[[int], float]) -> None:
        self._baseline_default = fn

    def set_replica_baseline(
        self, replica: int, fn: Callable[[int], float]
    ) -> None:
        self._baseline_overrides[replica] = fn

    def archive_stats(self, stats: Sequence) -> None:
        """Keep a replaced replica's stats rows for the final metrics."""
        self._archived_stats.extend(stats)

    @property
    def archived_stats(self) -> List:
        return list(self._archived_stats)

    def alloc_stats_base(self, first_free: int, stages: int) -> int:
        """Distinct stats-row ids for a rebuilt replica's stages."""
        if self._next_stats_base is None:
            self._next_stats_base = first_free
        base = self._next_stats_base
        self._next_stats_base += stages
        return base

    # -- the log -------------------------------------------------------------

    def _event(
        self, cycle: float, kind: str, replica: Optional[int], detail: str
    ) -> None:
        self.events.append(
            RecoveryEvent(cycle=cycle, kind=kind, replica=replica, detail=detail)
        )

    def finalize(self, records, frequency_hz: float) -> Optional[dict]:
        """The metrics-facing recovery summary (None when nothing fired).

        MTTR is detection-to-readmission of the *first* confirmed death:
        the cycle the controller confirmed the device dead to the cycle
        its re-planned replacement could accept traffic.  Goodput
        retention compares the completion rate after readmission with
        the pre-fault completion rate.  Returning None for an event-free
        run keeps zero-fault metrics bit-identical to the plain
        scheduler's.
        """
        if not self.events:
            return None
        detect: Optional[float] = None
        ready: Optional[float] = None
        mttr: Optional[float] = None
        if self._down_at and self.rebuilt:
            first = min(
                (cycle, replica) for replica, cycle in self._down_at.items()
                if replica in self.rebuilt
            )
            detect = first[0]
            ready = self.rebuilt[first[1]]
            mttr = ready - detect
        elif self._down_at:
            detect = min(self._down_at.values())
        completions = [r for r in records if r.outcome == "completed"]
        pre_rate = post_rate = retention = None
        if detect is not None and completions:
            first_arrival = min(r.arrival_cycle for r in completions)
            pre = [r for r in completions if r.completion_cycle <= detect]
            window = detect - first_arrival
            if pre and window > 0:
                pre_rate = len(pre) / window * frequency_hz
            if ready is not None:
                post = [r for r in completions if r.dispatch_cycle >= ready]
                last = max(
                    (r.completion_cycle for r in post), default=ready
                )
                if post and last > ready:
                    post_rate = len(post) / (last - ready) * frequency_hz
            if pre_rate and post_rate:
                retention = post_rate / pre_rate
        return {
            "events": [e.to_dict() for e in self.events],
            "ladder_steps": self.rung_index + 1,
            "rebuilds": len(self.rebuilt),
            "detect_cycle": detect,
            "restored_cycle": ready,
            "mttr_cycles": mttr,
            "mttr_ms": (
                None if mttr is None else mttr / frequency_hz * 1e3
            ),
            "prefault_goodput_rps": pre_rate,
            "recovered_goodput_rps": post_rate,
            "goodput_retention": retention,
            "health": self.monitor.report(),
        }


# -- the recovery_log artifact ----------------------------------------------


def recovery_log_payload(
    policy: ResiliencePolicy,
    recovery: Optional[dict],
    faults=None,
    seed: int = 0,
) -> dict:
    """The checksummed payload of a ``recovery_log`` artifact.

    Deterministic by construction: the same seed + fault spec + policy
    produces the same event list, so two runs yield byte-identical
    payloads (asserted in ``tests/test_resilience.py``).
    """
    recovery = recovery or {}
    return {
        "schema_version": 1,
        "policy": policy.to_dict(),
        "fault_spec": (
            None if faults is None or getattr(faults, "empty", True)
            else str(faults)
        ),
        "fault_seed": seed,
        "events": recovery.get("events", []),
        "summary": {
            key: recovery.get(key)
            for key in (
                "ladder_steps",
                "rebuilds",
                "detect_cycle",
                "restored_cycle",
                "mttr_cycles",
                "mttr_ms",
                "prefault_goodput_rps",
                "recovered_goodput_rps",
                "goodput_retention",
            )
        },
    }


def save_recovery_log(
    path: Union[str, Path],
    policy: ResiliencePolicy,
    recovery: Optional[dict],
    faults=None,
    seed: int = 0,
) -> Path:
    """Atomically write the recovery log inside the standard envelope."""
    from repro.check.artifacts import save_artifact

    return save_artifact(
        path,
        RECOVERY_LOG_KIND,
        recovery_log_payload(policy, recovery, faults=faults, seed=seed),
    )
