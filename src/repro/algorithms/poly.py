"""Exact rational polynomial and matrix arithmetic.

The Cook-Toom construction behind Winograd's minimal filtering algorithm
(:mod:`repro.algorithms.winograd`) needs exact evaluation/interpolation
matrices — floating point here would contaminate the transform matrices
with rounding noise that tests could mistake for algorithmic error.  This
module provides the small amount of exact linear algebra required:
polynomials over :class:`fractions.Fraction`, Vandermonde matrices with a
point at infinity, and Gauss-Jordan inversion over the rationals.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import AlgorithmError

Rational = Union[int, Fraction]
Matrix = List[List[Fraction]]


def _frac(value: Rational) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise AlgorithmError(f"expected exact rational, got {type(value).__name__}")


class Polynomial:
    """A univariate polynomial with exact rational coefficients.

    Coefficients are stored lowest degree first; the zero polynomial has
    an empty coefficient list and degree -1.
    """

    def __init__(self, coefficients: Sequence[Rational] = ()):
        coeffs = [_frac(c) for c in coefficients]
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        self._coeffs: Tuple[Fraction, ...] = tuple(coeffs)

    @property
    def coefficients(self) -> Tuple[Fraction, ...]:
        return self._coeffs

    @property
    def degree(self) -> int:
        return len(self._coeffs) - 1

    def coefficient(self, power: int) -> Fraction:
        """Coefficient of ``x**power`` (zero beyond the degree)."""
        if 0 <= power < len(self._coeffs):
            return self._coeffs[power]
        return Fraction(0)

    def __call__(self, x: Rational) -> Fraction:
        """Evaluate with Horner's rule."""
        x = _frac(x)
        result = Fraction(0)
        for coeff in reversed(self._coeffs):
            result = result * x + coeff
        return result

    def __add__(self, other: "Polynomial") -> "Polynomial":
        n = max(len(self._coeffs), len(other._coeffs))
        return Polynomial(
            [self.coefficient(i) + other.coefficient(i) for i in range(n)]
        )

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        n = max(len(self._coeffs), len(other._coeffs))
        return Polynomial(
            [self.coefficient(i) - other.coefficient(i) for i in range(n)]
        )

    def __mul__(self, other: Union["Polynomial", Rational]) -> "Polynomial":
        if not isinstance(other, Polynomial):
            scalar = _frac(other)
            return Polynomial([c * scalar for c in self._coeffs])
        if not self._coeffs or not other._coeffs:
            return Polynomial()
        out = [Fraction(0)] * (len(self._coeffs) + len(other._coeffs) - 1)
        for i, a in enumerate(self._coeffs):
            for j, b in enumerate(other._coeffs):
                out[i + j] += a * b
        return Polynomial(out)

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return hash(self._coeffs)

    def __repr__(self) -> str:
        if not self._coeffs:
            return "Polynomial(0)"
        terms = [f"{c}*x^{i}" for i, c in enumerate(self._coeffs) if c]
        return "Polynomial(" + " + ".join(terms) + ")"

    @staticmethod
    def from_roots(roots: Sequence[Rational]) -> "Polynomial":
        """Monic polynomial with the given roots: prod (x - root)."""
        result = Polynomial([1])
        for root in roots:
            result = result * Polynomial([-_frac(root), 1])
        return result


def vandermonde(points: Sequence[Rational], columns: int, infinity: bool) -> Matrix:
    """Evaluation matrix of a ``columns``-coefficient polynomial.

    Row i evaluates at ``points[i]``: ``[1, a_i, a_i^2, ...]``.  When
    ``infinity`` is set an extra final row selects the leading coefficient
    — the Toom-Cook "evaluation at infinity" that saves one finite point.
    """
    rows: Matrix = []
    for point in points:
        p = _frac(point)
        row = [Fraction(1)]
        for _ in range(columns - 1):
            row.append(row[-1] * p)
        rows.append(row)
    if infinity:
        rows.append([Fraction(0)] * (columns - 1) + [Fraction(1)])
    return rows


def identity(n: int) -> Matrix:
    return [
        [Fraction(1) if i == j else Fraction(0) for j in range(n)] for i in range(n)
    ]


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    if not a or not b or len(a[0]) != len(b):
        raise AlgorithmError("matrix dimension mismatch")
    cols = len(b[0])
    inner = len(b)
    return [
        [sum((row[k] * b[k][j] for k in range(inner)), Fraction(0)) for j in range(cols)]
        for row in a
    ]


def mat_transpose(a: Matrix) -> Matrix:
    return [list(column) for column in zip(*a)]


def mat_inverse(matrix: Matrix) -> Matrix:
    """Exact Gauss-Jordan inversion with partial (nonzero) pivoting."""
    n = len(matrix)
    if any(len(row) != n for row in matrix):
        raise AlgorithmError("matrix must be square")
    work = [list(row) for row in matrix]
    inverse = identity(n)
    for col in range(n):
        pivot_row = next(
            (r for r in range(col, n) if work[r][col] != 0),
            None,
        )
        if pivot_row is None:
            raise AlgorithmError("matrix is singular")
        work[col], work[pivot_row] = work[pivot_row], work[col]
        inverse[col], inverse[pivot_row] = inverse[pivot_row], inverse[col]
        pivot = work[col][col]
        work[col] = [v / pivot for v in work[col]]
        inverse[col] = [v / pivot for v in inverse[col]]
        for row in range(n):
            if row == col:
                continue
            factor = work[row][col]
            if factor == 0:
                continue
            work[row] = [a - factor * b for a, b in zip(work[row], work[col])]
            inverse[row] = [a - factor * b for a, b in zip(inverse[row], inverse[col])]
    return inverse


def to_numpy(matrix: Matrix, dtype=np.float64) -> np.ndarray:
    """Convert an exact matrix to a numpy float array."""
    return np.array([[float(v) for v in row] for row in matrix], dtype=dtype)


def max_denominator(matrix: Matrix) -> int:
    """Largest denominator appearing in the matrix (fixed-point scaling aid)."""
    return max((value.denominator for row in matrix for value in row), default=1)


def max_abs(matrix: Matrix) -> Fraction:
    """Largest absolute entry (numeric-range diagnostic for fixed point)."""
    return max((abs(value) for row in matrix for value in row), default=Fraction(0))
