"""Convolution algorithms: direct, im2col/GEMM, FFT, and Winograd.

The paper contrasts the *conventional* algorithm (direct sliding-window
MACs, :mod:`repro.algorithms.direct`) with the *Winograd* minimal-filtering
algorithm (:mod:`repro.algorithms.winograd`) whose transform matrices are
generated for arbitrary F(m, r) by exact-rational Cook-Toom construction
(:mod:`repro.algorithms.poly`).  im2col/GEMM and FFT variants — the other
"computation structure transformations" the paper mentions — are provided
as additional functional baselines.  :mod:`repro.algorithms.fixed_point`
models the 16-bit fixed-point datapath of the ZC706 implementation.
"""

from repro.algorithms.winograd import (
    WinogradTransform,
    winograd_conv2d,
    winograd_transform,
)
from repro.algorithms.direct import direct_conv2d
from repro.algorithms.im2col import im2col, im2col_conv2d
from repro.algorithms.fft import fft_conv2d

__all__ = [
    "WinogradTransform",
    "direct_conv2d",
    "fft_conv2d",
    "im2col",
    "im2col_conv2d",
    "winograd_conv2d",
    "winograd_transform",
]
