"""16-bit fixed-point datapath model.

The ZC706 implementation "use[s] 16-bit fixed data type" (paper S7.1).
This module models a signed Q-format quantizer so the functional engines
can be run with the precision the hardware would see, and so tests can
bound the Winograd-vs-direct divergence under quantization (the Winograd
transforms amplify dynamic range, a known fixed-point hazard).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlgorithmError


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed two's-complement Q(integer_bits, frac_bits) format.

    Total width is ``1 + integer_bits + frac_bits`` (sign included in
    neither field), e.g. the paper's 16-bit type with 8 fractional bits is
    ``FixedPointFormat(7, 8)``.
    """

    integer_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.frac_bits < 0:
            raise AlgorithmError("bit fields must be non-negative")
        if self.width > 64:
            raise AlgorithmError("formats wider than 64 bits are not supported")

    @property
    def width(self) -> int:
        """Total bit width including the sign bit."""
        return 1 + self.integer_bits + self.frac_bits

    @property
    def scale(self) -> int:
        """LSB weight denominator: values are integers / scale."""
        return 1 << self.frac_bits

    @property
    def max_value(self) -> float:
        return ((1 << (self.width - 1)) - 1) / self.scale

    @property
    def min_value(self) -> float:
        return -(1 << (self.width - 1)) / self.scale

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round to nearest representable value, saturating at the rails."""
        scaled = np.rint(np.asarray(values, dtype=float) * self.scale)
        lo = -(1 << (self.width - 1))
        hi = (1 << (self.width - 1)) - 1
        return np.clip(scaled, lo, hi) / self.scale

    def to_integers(self, values: np.ndarray) -> np.ndarray:
        """Raw integer codes (saturating round-to-nearest)."""
        scaled = np.rint(np.asarray(values, dtype=float) * self.scale)
        lo = -(1 << (self.width - 1))
        hi = (1 << (self.width - 1)) - 1
        return np.clip(scaled, lo, hi).astype(np.int64)

    def from_integers(self, codes: np.ndarray) -> np.ndarray:
        return np.asarray(codes, dtype=float) / self.scale

    def quantization_error(self, values: np.ndarray) -> float:
        """Max absolute error introduced by quantizing ``values``."""
        return float(np.max(np.abs(self.quantize(values) - values), initial=0.0))


#: The paper's datapath format: 16-bit fixed, Q7.8.
Q16 = FixedPointFormat(integer_bits=7, frac_bits=8)


def quantize_model_weights(weights: dict, fmt: FixedPointFormat = Q16) -> dict:
    """Quantize a ``repro.nn.functional.init_weights``-style dict in place shape."""
    return {
        name: {key: fmt.quantize(array) for key, array in params.items()}
        for name, params in weights.items()
    }
