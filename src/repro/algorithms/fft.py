"""FFT-based convolution.

The other transform-domain alternative the paper mentions.  Uses real
2-D FFTs with frequency-domain pointwise products; exact up to floating
point for any kernel size, stride 1 (strided outputs are obtained by
subsampling, which is why FFT is unattractive for stride > 1 layers).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AlgorithmError


def fft_conv2d(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """Convolution via frequency-domain products (cross-correlation form)."""
    if data.ndim != 3 or weights.ndim != 4:
        raise AlgorithmError("expects (M,H,W) data and (N,M/g,K,K) weights")
    out_channels, group_channels, kernel, kernel2 = weights.shape
    if kernel != kernel2:
        raise AlgorithmError("only square kernels are supported")
    in_channels = data.shape[0]
    if in_channels % groups or out_channels % groups:
        raise AlgorithmError("channels not divisible by groups")
    padded = np.pad(data.astype(float), [(0, 0), (pad, pad), (pad, pad)])
    _, height, width = padded.shape
    if height < kernel or width < kernel:
        raise AlgorithmError("kernel larger than padded input")
    full_h = height
    full_w = width
    # Cross-correlation == convolution with a flipped kernel.
    flipped = weights[:, :, ::-1, ::-1]
    data_f = np.fft.rfft2(padded, s=(full_h, full_w))
    group_out = out_channels // groups
    out_h = height - kernel + 1
    out_w = width - kernel + 1
    out = np.empty((out_channels, out_h, out_w))
    for g in range(groups):
        w_f = np.fft.rfft2(
            flipped[g * group_out : (g + 1) * group_out], s=(full_h, full_w)
        )
        d_f = data_f[g * group_channels : (g + 1) * group_channels]
        prod = np.einsum("ncij,cij->nij", w_f, d_f)
        full = np.fft.irfft2(prod, s=(full_h, full_w))
        # 'valid' region of the full linear convolution starts at kernel-1.
        out[g * group_out : (g + 1) * group_out] = full[
            :, kernel - 1 : kernel - 1 + out_h, kernel - 1 : kernel - 1 + out_w
        ]
    if stride > 1:
        out = out[:, ::stride, ::stride]
    if bias is not None:
        out = out + bias.reshape(-1, 1, 1)
    return out
