"""im2col + GEMM convolution.

One of the "computation structure transformation" alternatives the paper
mentions (matrix multiplication): unroll every receptive field into a
column, then the convolution becomes a single matrix product.  Used as a
fast functional baseline and in tests as an independent oracle.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AlgorithmError


def im2col(data: np.ndarray, kernel: int, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Unroll ``(M, H, W)`` input into a ``(M*K*K, H'*W')`` patch matrix."""
    if data.ndim != 3:
        raise AlgorithmError("im2col expects (M,H,W) data")
    channels = data.shape[0]
    padded = np.pad(data, [(0, 0), (pad, pad), (pad, pad)])
    _, height, width = padded.shape
    if height < kernel or width < kernel:
        raise AlgorithmError("kernel larger than padded input")
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    columns = np.empty((channels * kernel * kernel, out_h * out_w), dtype=padded.dtype)
    row = 0
    for c in range(channels):
        for u in range(kernel):
            for v in range(kernel):
                window = padded[
                    c, u : u + stride * out_h : stride, v : v + stride * out_w : stride
                ]
                columns[row] = window.reshape(-1)
                row += 1
    return columns


def im2col_conv2d(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """Convolution as (weights-as-rows) @ im2col(data)."""
    if data.ndim != 3 or weights.ndim != 4:
        raise AlgorithmError("expects (M,H,W) data and (N,M/g,K,K) weights")
    out_channels, group_channels, kernel, kernel2 = weights.shape
    if kernel != kernel2:
        raise AlgorithmError("only square kernels are supported")
    in_channels = data.shape[0]
    if in_channels % groups or out_channels % groups:
        raise AlgorithmError("channels not divisible by groups")
    padded_h = data.shape[1] + 2 * pad
    padded_w = data.shape[2] + 2 * pad
    out_h = (padded_h - kernel) // stride + 1
    out_w = (padded_w - kernel) // stride + 1
    group_out = out_channels // groups
    out = np.empty((out_channels, out_h, out_w), dtype=np.result_type(data, weights))
    for g in range(groups):
        cols = im2col(
            data[g * group_channels : (g + 1) * group_channels], kernel, stride, pad
        )
        flat = weights[g * group_out : (g + 1) * group_out].reshape(group_out, -1)
        out[g * group_out : (g + 1) * group_out] = (flat @ cols).reshape(
            group_out, out_h, out_w
        )
    if bias is not None:
        out = out + bias.reshape(-1, 1, 1)
    return out
