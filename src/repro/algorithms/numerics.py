"""Numerical analysis of Winograd transforms.

Why does the paper stop at F(4x4, 3x3) when larger tiles reduce
multiplications further?  Because the transform matrices grow badly
conditioned: transformed values expand beyond the 16-bit fixed range and
rounding noise is amplified on the way back.  This module quantifies
that trade-off:

* **static metrics** from the exact matrices — max |entry|, row-sum
  (infinity) norms of ``B^T`` / ``G`` / ``A^T``, and their product, a
  standard error-amplification proxy for the algorithm;
* **empirical metrics** — measured output error of the quantized
  Winograd pipeline against exact convolution, per F(m, r).

Used by `examples/winograd_playground.py` and the numerics tests to
document where tile-size exploration stops paying at 16 bits.

Note on scaling: these are the *unscaled* Cook-Toom matrices, whose
magnitude concentrates in ``B^T``/``A^T``; production implementations
(Lavin's, vendor libraries) diagonal-rescale the triple to balance the
norms, which lowers the absolute error at every tile size but preserves
the ordering measured here — larger tiles always round worse at a fixed
word length, which is the comparison the optimizer cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

import numpy as np

from repro.algorithms import poly
from repro.algorithms.fixed_point import FixedPointFormat, Q16
from repro.algorithms.winograd import (
    exact_transform_matrices,
    winograd_conv2d,
    winograd_transform,
)
from repro.nn.functional import conv2d


def _inf_norm(matrix) -> Fraction:
    """Row-sum (infinity) norm of an exact matrix."""
    return max(
        (sum((abs(v) for v in row), Fraction(0)) for row in matrix),
        default=Fraction(0),
    )


@dataclass(frozen=True)
class TransformMetrics:
    """Static conditioning metrics of one F(m, r) transform triple."""

    m: int
    r: int
    alpha: int
    max_abs_bt: float
    max_abs_g: float
    max_abs_at: float
    norm_bt: float
    norm_g: float
    norm_at: float

    @property
    def amplification(self) -> float:
        """||A^T|| * ||B^T|| * ||G||: the classic error-growth proxy."""
        return self.norm_at * self.norm_bt * self.norm_g

    @property
    def dynamic_range_bits(self) -> float:
        """Extra integer bits the transform domain needs over the input."""
        growth = max(self.max_abs_bt, 1.0) * max(self.max_abs_g, 1.0)
        return float(np.log2(growth))


def transform_metrics(m: int, r: int) -> TransformMetrics:
    """Compute static metrics from the exact (Fraction) matrices."""
    at, g, bt = exact_transform_matrices(m, r)
    return TransformMetrics(
        m=m,
        r=r,
        alpha=m + r - 1,
        max_abs_bt=float(poly.max_abs(bt)),
        max_abs_g=float(poly.max_abs(g)),
        max_abs_at=float(poly.max_abs(at)),
        norm_bt=float(_inf_norm(bt)),
        norm_g=float(_inf_norm(g)),
        norm_at=float(_inf_norm(at)),
    )


def winograd_conv2d_quantized(
    data: np.ndarray,
    weights: np.ndarray,
    fmt: FixedPointFormat,
    pad: int = 0,
    m: int = 4,
) -> np.ndarray:
    """Winograd convolution with *transform-domain* quantization.

    Models the hardware datapath: the transformed kernels ``U = G g G^T``
    are stored quantized (that is how the weight headers ship them), the
    transformed input tiles ``V = B^T d B`` are quantized on their way
    into the multiplier array, and the channel-accumulated products are
    quantized again before the inverse transform.  This is where the
    large-tile transforms actually hurt — their dynamic-range growth
    saturates or rounds away precision that the float pipeline hides.
    """
    from repro.algorithms.winograd import tile_count

    out_channels, channels, r, _ = weights.shape
    transform = winograd_transform(m, r)
    alpha = transform.alpha
    padded = np.pad(data.astype(float), [(0, 0), (pad, pad), (pad, pad)])
    _, height, width = padded.shape
    out_h = height - r + 1
    out_w = width - r + 1
    tiles_h = tile_count(out_h, m)
    tiles_w = tile_count(out_w, m)
    need_h = (tiles_h - 1) * m + alpha
    need_w = (tiles_w - 1) * m + alpha
    padded = np.pad(
        padded, [(0, 0), (0, need_h - height), (0, need_w - width)]
    )
    # Transform-domain values outgrow the input range; at a fixed word
    # length the designer re-allocates integer vs fraction bits to the
    # *calibrated* range (standard activation-range calibration) — so
    # larger tiles pay in resolution.  The accumulator is the wider
    # ap_fixed<32,16> the HLS templates use.
    word = fmt.width
    u_float = transform.transform_kernels(weights)
    v_float = np.einsum(
        "ax,cthxy,by->cthab",
        transform.BT,
        _gather_tiles(padded, tiles_h, tiles_w, m, alpha),
        transform.BT,
    )
    u_fmt = _calibrated_format(u_float, word)
    v_fmt = _calibrated_format(v_float, word)
    acc_fmt = FixedPointFormat(integer_bits=15, frac_bits=16)
    u = u_fmt.quantize(u_float)
    out = np.zeros((out_channels, tiles_h * m, tiles_w * m))
    for th in range(tiles_h):
        for tw in range(tiles_w):
            v = v_fmt.quantize(v_float[:, th, tw])
            prod = acc_fmt.quantize(np.einsum("ncab,cab->nab", u, v))
            y = np.einsum("xa,nab,yb->nxy", transform.AT, prod, transform.AT)
            out[:, th * m : th * m + m, tw * m : tw * m + m] = y
    return out[:, :out_h, :out_w]


def _gather_tiles(padded, tiles_h, tiles_w, m, alpha):
    channels = padded.shape[0]
    tiles = np.empty((channels, tiles_h, tiles_w, alpha, alpha))
    for th in range(tiles_h):
        for tw in range(tiles_w):
            tiles[:, th, tw] = padded[
                :, th * m : th * m + alpha, tw * m : tw * m + alpha
            ]
    return tiles


def _calibrated_format(values: np.ndarray, word: int) -> FixedPointFormat:
    """Smallest integer field covering the observed range at ``word`` bits."""
    peak = float(np.abs(values).max(initial=0.0))
    int_bits = max(0, int(np.ceil(np.log2(max(peak, 1e-12)))) + 1)
    int_bits = min(int_bits, word - 2)
    return FixedPointFormat(int_bits, word - 1 - int_bits)


def empirical_error(
    m: int,
    r: int,
    fmt: Optional[FixedPointFormat] = Q16,
    channels: int = 4,
    out_channels: int = 4,
    size: int = 24,
    trials: int = 3,
    seed: int = 0,
) -> float:
    """Measured max |winograd - exact| on random data.

    With ``fmt`` set, the Winograd pipeline runs with transform-domain
    quantization (:func:`winograd_conv2d_quantized`) against the exact
    convolution of the same quantized operands — the reported error is
    the *algorithm's* numerical cost at that word length, not the
    quantization of the data itself.
    """
    rng = np.random.default_rng(seed)
    transform = winograd_transform(m, r)
    worst = 0.0
    for _ in range(trials):
        data = rng.uniform(-1, 1, (channels, size, size))
        weights = rng.uniform(-0.5, 0.5, (out_channels, channels, r, r))
        if fmt is not None:
            data = fmt.quantize(data)
            weights = fmt.quantize(weights)
            exact = conv2d(data, weights, stride=1, pad=r // 2)
            wino = winograd_conv2d_quantized(data, weights, fmt, pad=r // 2, m=m)
            worst = max(worst, float(np.abs(wino - exact).max()))
        else:
            exact = conv2d(data, weights, stride=1, pad=r // 2)
            wino = winograd_conv2d(
                data, weights, pad=r // 2, m=m, transform=transform
            )
            worst = max(worst, float(np.abs(wino - exact).max()))
    return worst


def stability_table(
    configurations: Sequence = ((2, 3), (4, 3), (6, 3), (8, 3), (4, 5)),
    fmt: Optional[FixedPointFormat] = Q16,
):
    """(metrics, empirical error) per configuration, in order."""
    rows = []
    for m, r in configurations:
        metrics = transform_metrics(m, r)
        error = empirical_error(m, r, fmt)
        rows.append((metrics, error))
    return rows
