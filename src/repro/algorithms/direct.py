"""The conventional (direct) convolution algorithm.

A thin, explicitly-looped implementation of paper equation (1): kernels
slide over the input feature maps with stride ``S`` and every output
element is an ``M x K x K`` dot product.  This is the bit-exact model of
what the conventional hardware engine computes, kept deliberately simple;
:func:`repro.nn.functional.conv2d` is the fast vectorized equivalent used
as the oracle in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AlgorithmError
from repro.nn.functional import conv2d


def direct_conv2d(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """Direct convolution (paper eq. 1); see :func:`repro.nn.functional.conv2d`."""
    if stride < 1:
        raise AlgorithmError(f"stride must be positive, got {stride}")
    return conv2d(data, weights, bias, stride=stride, pad=pad, groups=groups)


def direct_conv2d_naive(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Scalar-loop transliteration of paper equation (1).

    Exists so the vectorized paths can be validated against code whose
    structure matches the formula one-to-one.  Quadratically slow — use
    only on small tensors.
    """
    if data.ndim != 3 or weights.ndim != 4:
        raise AlgorithmError("expects (M,H,W) data and (N,M,K,K) weights")
    if weights.shape[1] != data.shape[0]:
        raise AlgorithmError("naive variant does not support groups")
    padded = np.pad(data.astype(float), [(0, 0), (pad, pad), (pad, pad)])
    n_out, n_in, kernel, _ = weights.shape
    _, height, width = padded.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = np.zeros((n_out, out_h, out_w))
    for n in range(n_out):
        for i in range(out_h):
            for j in range(out_w):
                acc = 0.0
                for m in range(n_in):
                    for u in range(kernel):
                        for v in range(kernel):
                            acc += (
                                padded[m, i * stride + u, j * stride + v]
                                * weights[n, m, u, v]
                            )
                out[n, i, j] = acc
    if bias is not None:
        out += bias.reshape(-1, 1, 1)
    return out
