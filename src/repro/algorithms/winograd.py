"""Winograd minimal filtering: transform generation and convolution.

Implements the fast algorithm of Section 2.1 of the paper for arbitrary
``F(m, r)`` — ``m`` FIR outputs of an ``r``-tap filter with ``m + r - 1``
multiplications — via the Cook-Toom construction over exact rationals,
then nests the 1-D algorithm into the 2-D form

    ``Y = A^T [ (G g G^T) . (B^T d B) ] A``            (paper eq. 3)

used by the accelerator (the paper fixes ``F(4x4, 3x3)``; this module is
general so the optimizer can also apply Winograd to 5x5 layers such as
AlexNet conv2, see DESIGN.md).

Construction.  Choose ``alpha - 1`` distinct rational points plus the
point at infinity (``alpha = m + r - 1``).  With ``E_k`` the Vandermonde
evaluation matrix of a ``k``-coefficient polynomial at those points and
``C`` the square evaluation matrix of the product polynomial, Toom-Cook
polynomial multiplication gives the linear-convolution matrix identity
``M(g) = C^-1 diag(E_r g) E_m``.  FIR filtering is the transpose of
linear convolution, hence

    ``A^T = E_m^T``,  ``G = E_r``,  ``B^T = (C^-1)^T``.

All three matrices are produced exactly (Fractions) and converted to
floats only at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import poly
from repro.errors import AlgorithmError

#: Interpolation points used in order of preference.  Small values and
#: simple fractions keep the transform matrices well conditioned — the
#: same choice wincnn and Lavin's paper make.
DEFAULT_POINTS: Tuple[Fraction, ...] = tuple(
    Fraction(n, d)
    for n, d in [
        (0, 1),
        (1, 1),
        (-1, 1),
        (2, 1),
        (-2, 1),
        (1, 2),
        (-1, 2),
        (3, 1),
        (-3, 1),
        (1, 3),
        (-1, 3),
        (4, 1),
        (-4, 1),
        (1, 4),
        (-1, 4),
    ]
)


@dataclass(frozen=True)
class WinogradTransform:
    """The transform triple for ``F(m, r)`` (1-D) / ``F(m x m, r x r)`` (2-D).

    Attributes:
        m: Output tile size.
        r: Filter tap count (kernel size).
        AT: Inverse (output) transform, shape ``(m, alpha)``.
        G: Filter transform, shape ``(alpha, r)``.
        BT: Input transform, shape ``(alpha, alpha)``.
    """

    m: int
    r: int
    AT: np.ndarray
    G: np.ndarray
    BT: np.ndarray

    @property
    def alpha(self) -> int:
        """Input tile size ``m + r - 1`` = multiplications per 1-D output group."""
        return self.m + self.r - 1

    @property
    def multiplications_2d(self) -> int:
        """Element-wise multiplications per 2-D output tile (one channel)."""
        return self.alpha * self.alpha

    @property
    def direct_multiplications_2d(self) -> int:
        """Multiplications the conventional algorithm needs for the same tile."""
        return self.m * self.m * self.r * self.r

    @property
    def multiplication_reduction(self) -> float:
        """Conventional-to-Winograd multiplication ratio (4.0 for F(4x4,3x3))."""
        return self.direct_multiplications_2d / self.multiplications_2d

    def filter_1d(self, signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
        """Apply the 1-D minimal filtering algorithm to one input tile.

        Args:
            signal: ``alpha`` input samples.
            taps: ``r`` filter taps.

        Returns:
            ``m`` outputs ``y_i = sum_j signal[i + j] * taps[j]``.
        """
        if signal.shape != (self.alpha,):
            raise AlgorithmError(f"signal must have {self.alpha} samples")
        if taps.shape != (self.r,):
            raise AlgorithmError(f"filter must have {self.r} taps")
        return self.AT @ ((self.G @ taps) * (self.BT @ signal))

    def filter_2d(self, tile: np.ndarray, kernel: np.ndarray) -> np.ndarray:
        """Apply the nested 2-D algorithm to one ``alpha x alpha`` input tile."""
        if tile.shape != (self.alpha, self.alpha):
            raise AlgorithmError(f"tile must be {self.alpha}x{self.alpha}")
        if kernel.shape != (self.r, self.r):
            raise AlgorithmError(f"kernel must be {self.r}x{self.r}")
        u = self.G @ kernel @ self.G.T
        v = self.BT @ tile @ self.BT.T
        return self.AT @ (u * v) @ self.AT.T

    def transform_kernels(self, weights: np.ndarray) -> np.ndarray:
        """Pre-transform a ``(..., r, r)`` kernel stack to ``(..., alpha, alpha)``."""
        if weights.shape[-2:] != (self.r, self.r):
            raise AlgorithmError(
                f"kernels must end in ({self.r},{self.r}), got {weights.shape}"
            )
        return np.einsum("ar,...rs,bs->...ab", self.G, weights, self.G)


def select_points(count: int, points: Optional[Sequence] = None) -> Tuple[Fraction, ...]:
    """Pick ``count`` distinct finite interpolation points."""
    pool = tuple(Fraction(p) for p in points) if points is not None else DEFAULT_POINTS
    if len(set(pool)) != len(pool):
        raise AlgorithmError("interpolation points must be distinct")
    if count > len(pool):
        raise AlgorithmError(
            f"need {count} interpolation points but only {len(pool)} available"
        )
    return pool[:count]


def _exact_transform(m: int, r: int, points: Optional[Sequence]):
    alpha = m + r - 1
    finite = select_points(alpha - 1, points)
    e_m = poly.vandermonde(finite, m, infinity=True)
    e_r = poly.vandermonde(finite, r, infinity=True)
    c = poly.vandermonde(finite, alpha, infinity=True)
    at = poly.mat_transpose(e_m)
    bt = poly.mat_transpose(poly.mat_inverse(c))
    return at, e_r, bt


@lru_cache(maxsize=None)
def _cached_transform(m: int, r: int, points_key) -> WinogradTransform:
    points = list(points_key) if points_key is not None else None
    at, g, bt = _exact_transform(m, r, points)
    return WinogradTransform(
        m=m, r=r, AT=poly.to_numpy(at), G=poly.to_numpy(g), BT=poly.to_numpy(bt)
    )


def winograd_transform(
    m: int, r: int, points: Optional[Sequence] = None
) -> WinogradTransform:
    """Generate the ``F(m, r)`` transform triple.

    Args:
        m: Outputs per tile (the paper uses 4).
        r: Filter taps / kernel size (the paper uses 3).
        points: Optional custom finite interpolation points
            (``alpha - 1`` of them); defaults to ``0, 1, -1, 2, -2, ...``.

    Raises:
        AlgorithmError: For non-positive sizes or bad points.
    """
    if m < 1 or r < 1:
        raise AlgorithmError(f"F({m},{r}) requires positive m and r")
    if m == 1 and r == 1:
        # Degenerate: a single multiplication.
        return WinogradTransform(
            m=1, r=1, AT=np.ones((1, 1)), G=np.ones((1, 1)), BT=np.ones((1, 1))
        )
    key = tuple(Fraction(p) for p in points) if points is not None else None
    return _cached_transform(m, r, key)


def exact_transform_matrices(m: int, r: int, points: Optional[Sequence] = None):
    """The (A^T, G, B^T) triple as exact Fraction matrices (for analysis)."""
    return _exact_transform(m, r, points)


def tile_count(extent: int, m: int) -> int:
    """Number of size-``m`` output tiles covering ``extent`` outputs."""
    return -(-extent // m)


def winograd_conv2d(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    pad: int = 0,
    m: int = 4,
    groups: int = 1,
    transform: Optional[WinogradTransform] = None,
) -> np.ndarray:
    """2-D convolution by the Winograd algorithm (stride 1 only).

    Functionally identical to :func:`repro.nn.functional.conv2d` with
    ``stride=1``; tiles the input into ``alpha x alpha`` patches with
    stride ``m``, runs the nested minimal filtering on every tile and
    channel, and accumulates over input channels (paper Section 2.1).

    Args:
        data: Input of shape ``(M, H, W)``.
        weights: Kernels of shape ``(N, M // groups, r, r)``.
        bias: Optional per-output-channel bias.
        pad: Symmetric zero padding.
        m: Output tile size (paper: 4).
        groups: Channel groups.
        transform: Pre-built transform to reuse; must match ``m`` and ``r``.

    Returns:
        Output of shape ``(N, H - r + 1 + 2 pad, W - r + 1 + 2 pad)``.
    """
    if data.ndim != 3 or weights.ndim != 4:
        raise AlgorithmError("winograd_conv2d expects (M,H,W) data, (N,M/g,r,r) weights")
    out_channels, group_channels, r, r2 = weights.shape
    if r != r2:
        raise AlgorithmError("only square kernels are supported")
    in_channels = data.shape[0]
    if in_channels % groups or out_channels % groups:
        raise AlgorithmError("channels not divisible by groups")
    if group_channels != in_channels // groups:
        raise AlgorithmError("weight channel dimension inconsistent with groups")
    if transform is None:
        transform = winograd_transform(m, r)
    elif transform.m != m or transform.r != r:
        raise AlgorithmError(
            f"transform is F({transform.m},{transform.r}), layer needs F({m},{r})"
        )

    padded = np.pad(
        data.astype(float), [(0, 0), (pad, pad), (pad, pad)], mode="constant"
    )
    _, height, width = padded.shape
    if height < r or width < r:
        raise AlgorithmError("kernel larger than padded input")
    out_h = height - r + 1
    out_w = width - r + 1
    tiles_h = tile_count(out_h, m)
    tiles_w = tile_count(out_w, m)
    alpha = transform.alpha
    # Extend on the bottom/right so every tile is a full alpha x alpha patch.
    need_h = (tiles_h - 1) * m + alpha
    need_w = (tiles_w - 1) * m + alpha
    padded = np.pad(
        padded,
        [(0, 0), (0, need_h - height), (0, need_w - width)],
        mode="constant",
    )

    group_out = out_channels // groups
    out = np.zeros((out_channels, tiles_h * m, tiles_w * m))
    for g in range(groups):
        d = padded[g * group_channels : (g + 1) * group_channels]
        w = weights[g * group_out : (g + 1) * group_out]
        # Gather tiles: (channels, tiles_h, tiles_w, alpha, alpha)
        tiles = np.empty((group_channels, tiles_h, tiles_w, alpha, alpha))
        for th in range(tiles_h):
            for tw in range(tiles_w):
                tiles[:, th, tw] = d[
                    :, th * m : th * m + alpha, tw * m : tw * m + alpha
                ]
        # Input transform V = B^T d B over the trailing two axes.
        v = np.einsum("ax,cijxy,by->cijab", transform.BT, tiles, transform.BT)
        # Filter transform U = G g G^T.
        u = transform.transform_kernels(w)
        # Element-wise product, accumulated over input channels (paper:
        # "the results are accumulated to produce an output tile").
        mprod = np.einsum("ncab,cijab->nijab", u, v)
        # Inverse transform Y = A^T M A.
        y = np.einsum("xa,nijab,yb->nijxy", transform.AT, mprod, transform.AT)
        out[g * group_out : (g + 1) * group_out] = (
            y.transpose(0, 1, 3, 2, 4).reshape(group_out, tiles_h * m, tiles_w * m)
        )
    out = out[:, :out_h, :out_w]
    if bias is not None:
        out = out + bias.reshape(-1, 1, 1)
    return out


def multiplication_counts(
    in_channels: int,
    out_channels: int,
    out_h: int,
    out_w: int,
    kernel: int,
    m: int = 4,
) -> Tuple[int, int]:
    """(conventional, winograd) multiplication counts for one conv layer.

    Winograd counts element-wise multiplications over full tiles (ragged
    edge tiles are padded, as in the hardware), conventional counts MACs.
    """
    direct = out_channels * in_channels * out_h * out_w * kernel * kernel
    alpha = m + kernel - 1
    tiles = tile_count(out_h, m) * tile_count(out_w, m)
    wino = out_channels * in_channels * tiles * alpha * alpha
    return direct, wino
