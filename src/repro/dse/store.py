"""Persistent, content-addressed cost store: ``implement()`` across runs.

PR 2's signature-keyed :class:`~repro.perf.cost.EvalContext` removed
40.8% of cost-model evaluations *within* a process — but the cache died
with it, so every compile, CI run and Figure 5 sweep re-paid the full
evaluation bill.  This module is the on-disk tier below that memory
cache: a content-addressed store of evaluated
:class:`~repro.perf.implement.Implementation` records, keyed by exactly
the same ``(layer signature, algorithm, weight mode, winograd m,
parallelism, cost-relevant device subset)`` identity the in-memory
cache uses.

Layout and discipline:

* **Keys.** An :class:`EvalContext` key is a tuple of frozen dataclasses
  and enums whose ``repr`` is deterministic across processes (no memory
  addresses, no hash randomization), so the store addresses entries by
  the SHA-256 of that canonical text, salted with :data:`KEY_VERSION`.
  Bumping :data:`KEY_VERSION` (required whenever ``implement()``'s
  outputs or the key layout change) invalidates every stale entry at
  once.
* **Shards.** Entries live in 256 shard files (first two hex digits of
  the digest) under ``<root>/shards/``, each a standard
  :mod:`repro.check` artifact envelope — versioned, checksummed, written
  atomically.  A truncated or bit-flipped shard therefore surfaces as a
  typed :class:`~repro.errors.ArtifactError` from :meth:`CostStore.load_shard`,
  never as a ``KeyError`` deep in a search.
* **Self-healing.** The lookup path (:meth:`CostStore.get`) treats a
  damaged shard or entry as *empty*, counts it, and lets the evaluation
  layer recompute; the next :meth:`CostStore.put_many` rewrites the
  shard wholesale, healing the damage.  Corruption costs time, never
  correctness.
* **Concurrency.** Writers take a per-shard ``flock`` lock, re-read the
  shard on disk, merge their entries and atomically replace the file —
  two processes flushing overlapping keys interleave without loss or
  torn files (values are pure functions of the key, so merge order is
  irrelevant).
* **Hygiene.** :meth:`CostStore.stats`, :meth:`CostStore.gc` (age- and
  count-bounded eviction with compaction) and :meth:`CostStore.clear`
  back the ``repro cache {stats,gc,clear}`` CLI.
"""

from __future__ import annotations

import errno
import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Tuple, Union

from repro.check.artifacts import (
    E_FIELD_VALUE,
    E_LOCK,
    load_envelope,
    require,
    save_artifact,
)
from repro.errors import ArtifactError, ArtifactIntegrityError, ArtifactSchemaError
from repro.faults.process import (
    POINT_STORE_LOCKED,
    POINT_STORE_SHARD_WRITTEN,
    crash_point,
)
from repro.hardware.resources import ResourceVector
from repro.perf.implement import Algorithm, Implementation, WeightMode

try:  # pragma: no cover - POSIX; the spin-lock fallback covers the rest
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Artifact kind of one shard file.
SHARD_KIND = "cost_store_shard"

#: Version salt of the key derivation *and* the entry payload layout.
#: Bump whenever ``implement()`` changes behaviour or the
#: :class:`Implementation` fields change: every older entry is then
#: unreachable (a different digest), so a stale store can never feed a
#: drifted cost back into a search.
KEY_VERSION = 1

#: Environment variable overriding the default store location.
STORE_ENV = "REPRO_COST_CACHE"

#: Hex digits of the digest that select a shard file (256 shards).
_SHARD_CHARS = 2

#: Shard-lock acquisition attempts before giving up with ``E_LOCK``.
LOCK_ATTEMPTS = 5

#: Base backoff between lock attempts (doubles each retry).
LOCK_BACKOFF_S = 0.05

#: ``flock`` errnos meaning "this filesystem cannot lock" (NFS without
#: lockd, some overlay/network mounts) — permanent, so retrying is
#: pointless; the store degrades to lockless writes instead.
_FLOCK_UNSUPPORTED = {
    getattr(errno, name)
    for name in ("ENOTSUP", "EOPNOTSUPP", "ENOSYS", "EINVAL")
    if hasattr(errno, name)
}


def default_store_root() -> Path:
    """The default on-disk location (``$REPRO_COST_CACHE`` or
    ``~/.cache/repro/cost_store``)."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "cost_store"


def stable_key_text(key: Hashable) -> str:
    """Deterministic textual form of an :class:`EvalContext` cache key.

    The key is built from frozen dataclasses, enums, strings and ints —
    all of which ``repr`` identically in every process — so this text is
    a portable identity where Python's salted ``hash()`` is not.
    """
    return repr(key)


def key_digest(key: Hashable) -> str:
    """Content address of one evaluation: SHA-256 of the salted key text."""
    text = f"v{KEY_VERSION}:{stable_key_text(key)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- Implementation <-> JSON -------------------------------------------------


def implementation_to_dict(impl: Implementation) -> dict:
    """JSON-serializable record of one evaluated engine."""
    return {
        "layer_name": impl.layer_name,
        "algorithm": impl.algorithm.value,
        "parallelism": impl.parallelism,
        "resources": impl.resources.as_dict(),
        "compute_cycles": impl.compute_cycles,
        "fill_cycles": impl.fill_cycles,
        "input_bytes": impl.input_bytes,
        "output_bytes": impl.output_bytes,
        "weight_dram_bytes": impl.weight_dram_bytes,
        "weights_resident": impl.weights_resident,
        "ops": impl.ops,
        "line_brams": impl.line_brams,
        "weight_brams": impl.weight_brams,
        "weight_mode": impl.weight_mode.value
        if impl.weight_mode is not None
        else None,
        "winograd_m": impl.winograd_m,
    }


def implementation_from_dict(entry: dict, path: str = "$") -> Implementation:
    """Rebuild an :class:`Implementation`, raising typed errors on damage."""
    algorithm_raw = require(entry, "algorithm", str, path)
    try:
        algorithm = Algorithm(algorithm_raw)
    except ValueError:
        raise ArtifactSchemaError(
            E_FIELD_VALUE,
            f"{path}.algorithm",
            f"{algorithm_raw!r} is not a known algorithm",
        ) from None
    weight_mode = None
    if entry.get("weight_mode") is not None:
        mode_raw = require(entry, "weight_mode", str, path)
        try:
            weight_mode = WeightMode(mode_raw)
        except ValueError:
            raise ArtifactSchemaError(
                E_FIELD_VALUE,
                f"{path}.weight_mode",
                f"{mode_raw!r} is not a known weight mode",
            ) from None
    resources = require(entry, "resources", dict, path)
    return Implementation(
        layer_name=require(entry, "layer_name", str, path),
        algorithm=algorithm,
        parallelism=require(entry, "parallelism", int, path),
        resources=ResourceVector(
            bram18k=require(resources, "bram18k", int, f"{path}.resources"),
            dsp=require(resources, "dsp", int, f"{path}.resources"),
            ff=require(resources, "ff", int, f"{path}.resources"),
            lut=require(resources, "lut", int, f"{path}.resources"),
        ),
        compute_cycles=require(entry, "compute_cycles", int, path),
        fill_cycles=require(entry, "fill_cycles", int, path),
        input_bytes=require(entry, "input_bytes", int, path),
        output_bytes=require(entry, "output_bytes", int, path),
        weight_dram_bytes=require(entry, "weight_dram_bytes", int, path),
        weights_resident=require(entry, "weights_resident", bool, path),
        ops=require(entry, "ops", int, path),
        line_brams=require(entry, "line_brams", int, path),
        weight_brams=require(entry, "weight_brams", int, path),
        weight_mode=weight_mode,
        winograd_m=require(entry, "winograd_m", int, path),
    )


# -- stats -------------------------------------------------------------------


@dataclass(frozen=True)
class CostStoreStats:
    """What ``repro cache stats`` reports."""

    root: str
    entries: int
    shards: int
    bytes: int
    corrupt_shards: int

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "entries": self.entries,
            "shards": self.shards,
            "bytes": self.bytes,
            "corrupt_shards": self.corrupt_shards,
        }

    def summary(self) -> str:
        lines = [
            f"cost store at {self.root}",
            f"  entries:        {self.entries:,}",
            f"  shard files:    {self.shards}",
            f"  size on disk:   {self.bytes / 1024:.1f} KB",
        ]
        if self.corrupt_shards:
            lines.append(
                f"  corrupt shards: {self.corrupt_shards} "
                "(ignored; will be rewritten on the next flush or gc)"
            )
        return "\n".join(lines)


class CostStore:
    """Content-addressed on-disk cache of cost-model evaluations.

    Thread-safe within a process (one lock guards the in-memory shard
    views) and safe across processes (per-shard file locks around every
    read-merge-write).  Pass one to
    :class:`~repro.perf.cost.EvalContext` via its ``store`` argument —
    or to ``optimize`` / ``compile_model`` / ``bandwidth_sweep`` via
    their ``store`` arguments — and evaluations persist across runs.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_store_root()
        self.shards_dir = self.root / "shards"
        self.locks_dir = self.root / "locks"
        self._lock = threading.Lock()
        # Per-process view of shard contents: shard id -> entries dict.
        self._shards: Dict[str, Dict[str, dict]] = {}
        #: Damaged shards/entries observed (and healed around) so far.
        self.corrupt_shards = 0
        self.corrupt_entries = 0
        #: Flushes that proceeded locklessly because the filesystem
        #: cannot ``flock`` (NFS and friends); merge-on-write still
        #: bounds the damage to losing a concurrent writer's entries.
        self.lock_fallbacks = 0
        #: Transient lock failures that succeeded on retry.
        self.lock_retries = 0
        # Once flock proves unsupported here, stop re-probing it.
        self._locks_unsupported = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostStore({str(self.root)!r})"

    # -- paths and locking ---------------------------------------------------

    def _shard_id(self, digest: str) -> str:
        return digest[:_SHARD_CHARS]

    def shard_path(self, shard_id: str) -> Path:
        return self.shards_dir / f"{shard_id}.json"

    def shard_paths(self) -> List[Path]:
        """Every shard file currently on disk, sorted."""
        if not self.shards_dir.is_dir():
            return []
        return sorted(self.shards_dir.glob("*.json"))

    def _acquire_shard_lock(self, shard_id: str):
        """Open + ``flock`` one shard's lock file, with bounded retry.

        Returns the locked file handle, or ``None`` when this
        filesystem cannot lock at all (counted in
        :attr:`lock_fallbacks`; the flush proceeds locklessly).

        Raises:
            ArtifactIntegrityError: ``E_LOCK`` when acquisition keeps
                failing transiently after :data:`LOCK_ATTEMPTS` tries —
                never a bare ``OSError`` from deep inside a flush.
        """
        if fcntl is None or self._locks_unsupported:
            self.lock_fallbacks += 1
            return None
        lock_path = self.locks_dir / f"{shard_id}.lock"
        last_error: Optional[OSError] = None
        for attempt in range(LOCK_ATTEMPTS):
            if attempt:
                self.lock_retries += 1
                time.sleep(LOCK_BACKOFF_S * (2 ** (attempt - 1)))
            handle = None
            try:
                self.locks_dir.mkdir(parents=True, exist_ok=True)
                handle = open(lock_path, "a+")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                return handle
            except OSError as exc:
                if handle is not None:
                    handle.close()
                if exc.errno in _FLOCK_UNSUPPORTED:
                    self._locks_unsupported = True
                    self.lock_fallbacks += 1
                    return None
                last_error = exc
        raise ArtifactIntegrityError(
            E_LOCK,
            "$",
            f"cannot lock cost-store shard {shard_id} after "
            f"{LOCK_ATTEMPTS} attempts: {last_error}",
        )

    @contextmanager
    def _shard_lock(self, shard_id: str):
        """Cross-process mutual exclusion for one shard's read-merge-write."""
        handle = self._acquire_shard_lock(shard_id)
        try:
            yield
        finally:
            if handle is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:
                    pass  # the close below releases the lock anyway
                handle.close()

    # -- loading -------------------------------------------------------------

    def load_shard(self, path: Union[str, Path]) -> Dict[str, dict]:
        """Read one shard file, *raising* typed errors on damage.

        This is the strict loader ``repro doctor``'s corruption probe
        exercises; the lookup path wraps it with self-healing.

        Raises:
            ArtifactError: Truncation, bit damage, checksum mismatch,
                schema problems — each with a stable code and JSON path.
        """
        envelope = load_envelope(path, expected_kind=SHARD_KIND)
        payload = envelope.payload
        version = require(payload, "key_version", int, "$.payload")
        if version != KEY_VERSION:
            # A stale shard is not an error — its digests can simply
            # never be queried — but its entries are dead weight.
            return {}
        entries = require(payload, "entries", dict, "$.payload")
        for digest, entry in entries.items():
            if not isinstance(entry, dict):
                raise ArtifactSchemaError(
                    E_FIELD_VALUE,
                    f"$.payload.entries.{digest}",
                    "entry must be an object",
                )
        return entries

    def _entries(self, shard_id: str) -> Dict[str, dict]:
        """In-memory view of one shard, loading (and healing) on demand."""
        with self._lock:
            cached = self._shards.get(shard_id)
            if cached is not None:
                return cached
        path = self.shard_path(shard_id)
        entries: Dict[str, dict] = {}
        if path.exists():
            try:
                entries = self.load_shard(path)
            except ArtifactError:
                # Damaged shard: serve misses so the evaluation layer
                # recomputes; the next flush rewrites the file.
                self.corrupt_shards += 1
        with self._lock:
            return self._shards.setdefault(shard_id, entries)

    def get(self, key: Hashable) -> Optional[Implementation]:
        """Look up one evaluation; ``None`` on miss *or* damage."""
        digest = key_digest(key)
        entry = self._entries(self._shard_id(digest)).get(digest)
        if entry is None:
            return None
        try:
            return implementation_from_dict(
                require(entry, "impl", dict, "$"), path="$.impl"
            )
        except ArtifactError:
            # A single damaged entry: heal by forgetting it.
            self.corrupt_entries += 1
            with self._lock:
                self._shards.get(self._shard_id(digest), {}).pop(digest, None)
            return None

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key) is not None

    # -- writing -------------------------------------------------------------

    def put_many(self, entries: Mapping[Hashable, Implementation]) -> int:
        """Merge evaluations into the store (the write-back flush).

        Entries are grouped by shard; each shard is re-read from disk
        under its file lock, merged and atomically replaced, so
        concurrent flushes from other processes are preserved.  Returns
        the number of entries written.
        """
        if not entries:
            return 0
        by_shard: Dict[str, Dict[str, dict]] = {}
        now = time.time()
        for key, impl in entries.items():
            digest = key_digest(key)
            by_shard.setdefault(self._shard_id(digest), {})[digest] = {
                "key": stable_key_text(key),
                "created": now,
                "impl": implementation_to_dict(impl),
            }
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        for shard_id, fresh in sorted(by_shard.items()):
            with self._shard_lock(shard_id):
                merged = self._read_for_merge(shard_id)
                crash_point(POINT_STORE_LOCKED)
                merged.update(fresh)
                self._write_shard(shard_id, merged)
                crash_point(POINT_STORE_SHARD_WRITTEN)
        return sum(len(fresh) for fresh in by_shard.values())

    def _read_for_merge(self, shard_id: str) -> Dict[str, dict]:
        """On-disk entries of one shard, healing damage to empty."""
        path = self.shard_path(shard_id)
        if not path.exists():
            return {}
        try:
            return dict(self.load_shard(path))
        except ArtifactError:
            self.corrupt_shards += 1
            return {}

    def _write_shard(self, shard_id: str, entries: Dict[str, dict]) -> None:
        save_artifact(
            self.shard_path(shard_id),
            SHARD_KIND,
            {"key_version": KEY_VERSION, "entries": entries},
        )
        with self._lock:
            self._shards[shard_id] = entries

    # -- hygiene -------------------------------------------------------------

    def stats(self) -> CostStoreStats:
        """Scan the store on disk (``repro cache stats``)."""
        entries = 0
        size = 0
        shards = 0
        corrupt = 0
        for path in self.shard_paths():
            shards += 1
            size += path.stat().st_size
            try:
                entries += len(self.load_shard(path))
            except ArtifactError:
                corrupt += 1
        return CostStoreStats(
            root=str(self.root),
            entries=entries,
            shards=shards,
            bytes=size,
            corrupt_shards=corrupt,
        )

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> int:
        """Evict and compact (``repro cache gc``).

        Drops entries older than ``max_age_s``, then the oldest entries
        beyond ``max_entries``; damaged shards compact to empty.  Every
        surviving shard is rewritten, so the pass also repairs any file
        that was half-damaged.  Returns the number of entries removed
        (damaged shards count their unknown contents as 0).
        """
        now = time.time()
        kept: List[Tuple[float, str, str, dict]] = []
        removed = 0
        shard_ids = []
        for path in self.shard_paths():
            shard_id = path.stem
            shard_ids.append(shard_id)
            with self._shard_lock(shard_id):
                for digest, entry in self._read_for_merge(shard_id).items():
                    created = entry.get("created")
                    age_ok = isinstance(created, (int, float)) and (
                        max_age_s is None or now - created <= max_age_s
                    )
                    if age_ok:
                        kept.append((created, digest, shard_id, entry))
                    else:
                        removed += 1
        if max_entries is not None and len(kept) > max_entries:
            kept.sort(key=lambda item: (item[0], item[1]), reverse=True)
            removed += len(kept) - max_entries
            kept = kept[:max_entries]
        survivors: Dict[str, Dict[str, dict]] = {sid: {} for sid in shard_ids}
        for _, digest, shard_id, entry in kept:
            survivors[shard_id][digest] = entry
        for shard_id, entries in sorted(survivors.items()):
            with self._shard_lock(shard_id):
                if entries:
                    self._write_shard(shard_id, entries)
                else:
                    try:
                        self.shard_path(shard_id).unlink()
                    except FileNotFoundError:
                        pass
                    with self._lock:
                        self._shards.pop(shard_id, None)
        return removed

    def clear(self) -> int:
        """Delete every entry (``repro cache clear``); returns the count."""
        removed = 0
        for path in self.shard_paths():
            shard_id = path.stem
            with self._shard_lock(shard_id):
                try:
                    removed += len(self.load_shard(path))
                except ArtifactError:
                    pass
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            with self._lock:
                self._shards.pop(shard_id, None)
        return removed


def resolve_store(
    store: Union[CostStore, str, Path, None]
) -> Optional[CostStore]:
    """Coerce a store argument (store object, path, or None)."""
    if store is None or isinstance(store, CostStore):
        return store
    return CostStore(store)
