"""Declarative sweep grids: device catalog x budgets x models x fleets.

A :class:`GridSpec` names the axes of a design-space sweep — models,
devices, bandwidth scale factors, feature-map transfer budgets and
fleet sizes — and :meth:`GridSpec.expand` turns it into the full cross
product of :class:`GridPoint` jobs.  Every point carries a stable
content-derived ``point_id``, which is what makes interrupted sweeps
resumable: a journaled result is matched to its grid point by id, not
by position, so editing a spec (adding a device, reordering budgets)
never mis-attributes old results.

Specs are plain JSON (see ``docs/dse.md``)::

    {
      "models": ["vgg_e", "alexnet"],
      "devices": ["zc706", "zcu102"],
      "transfer_bytes": [2097152, 8388608, null],
      "bandwidth_factors": [1.0, 2.0],
      "fleet_sizes": [1, 2]
    }

``null`` in ``transfer_bytes`` means "unconstrained" (the model's full
unfused feature-map traffic, as in :func:`repro.toolflow.compile_model`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.check.artifacts import (
    ENVELOPE_KEY,
    parse_envelope,
    payload_sha256,
    require,
)
from repro.errors import SweepError

#: Artifact kind of a spec saved inside an envelope (specs are also
#: accepted bare, since they are user-authored).
GRID_KIND = "sweep_grid"


@dataclass(frozen=True)
class GridPoint:
    """One independent compile/partition job of a sweep."""

    model: str
    device: str
    bandwidth_factor: float = 1.0
    transfer_bytes: Optional[int] = None
    fleet_size: int = 1

    @property
    def point_id(self) -> str:
        """Stable content-derived identity (resume key)."""
        return payload_sha256(self.to_dict())[:16]

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "device": self.device,
            "bandwidth_factor": self.bandwidth_factor,
            "transfer_bytes": self.transfer_bytes,
            "fleet_size": self.fleet_size,
        }

    @classmethod
    def from_dict(cls, payload: dict, path: str = "$") -> "GridPoint":
        transfer = payload.get("transfer_bytes")
        if transfer is not None and not isinstance(transfer, int):
            raise SweepError(
                f"{path}.transfer_bytes must be an integer or null, "
                f"got {transfer!r}"
            )
        return cls(
            model=require(payload, "model", str, path),
            device=require(payload, "device", str, path),
            bandwidth_factor=float(
                require(payload, "bandwidth_factor", (int, float), path)
            ),
            transfer_bytes=transfer,
            fleet_size=require(payload, "fleet_size", int, path),
        )

    def describe(self) -> str:
        bits = [self.model, self.device]
        if self.bandwidth_factor != 1.0:
            bits.append(f"bw{self.bandwidth_factor:g}x")
        bits.append(
            "T=none"
            if self.transfer_bytes is None
            else f"T={self.transfer_bytes / 2**20:g}MB"
        )
        if self.fleet_size != 1:
            bits.append(f"fleet={self.fleet_size}")
        return " ".join(bits)


@dataclass(frozen=True)
class GridSpec:
    """The axes of a sweep; expansion order is the declared order."""

    models: Tuple[str, ...]
    devices: Tuple[str, ...]
    bandwidth_factors: Tuple[float, ...] = (1.0,)
    transfer_bytes: Tuple[Optional[int], ...] = (None,)
    fleet_sizes: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        for name in ("models", "devices", "bandwidth_factors",
                     "transfer_bytes", "fleet_sizes"):
            if not getattr(self, name):
                raise SweepError(f"grid axis {name!r} must be non-empty")
        for factor in self.bandwidth_factors:
            if factor <= 0:
                raise SweepError(
                    f"bandwidth factor must be positive, got {factor}"
                )
        for size in self.fleet_sizes:
            if size < 1:
                raise SweepError(f"fleet size must be >= 1, got {size}")
        for transfer in self.transfer_bytes:
            if transfer is not None and transfer <= 0:
                raise SweepError(
                    f"transfer budget must be positive or null, got {transfer}"
                )

    @property
    def num_points(self) -> int:
        return (
            len(self.models)
            * len(self.devices)
            * len(self.bandwidth_factors)
            * len(self.transfer_bytes)
            * len(self.fleet_sizes)
        )

    def expand(self) -> List[GridPoint]:
        """The full cross product, in deterministic declared order."""
        points = []
        for model in self.models:
            for device in self.devices:
                for factor in self.bandwidth_factors:
                    for transfer in self.transfer_bytes:
                        for size in self.fleet_sizes:
                            points.append(
                                GridPoint(
                                    model=model,
                                    device=device,
                                    bandwidth_factor=factor,
                                    transfer_bytes=transfer,
                                    fleet_size=size,
                                )
                            )
        seen = {}
        for point in points:
            previous = seen.setdefault(point.point_id, point)
            if previous is not point:
                raise SweepError(
                    f"grid expands to duplicate points ({point.describe()}); "
                    "remove repeated axis values"
                )
        return points

    def to_dict(self) -> dict:
        return {
            "models": list(self.models),
            "devices": list(self.devices),
            "bandwidth_factors": list(self.bandwidth_factors),
            "transfer_bytes": list(self.transfer_bytes),
            "fleet_sizes": list(self.fleet_sizes),
        }

    def digest(self) -> str:
        """Stable identity of the spec (recorded in sweep results)."""
        return payload_sha256(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict, path: str = "$") -> "GridSpec":
        if not isinstance(payload, dict):
            raise SweepError(
                f"grid spec must be a JSON object, got {type(payload).__name__}"
            )
        models = require(payload, "models", list, path)
        devices = require(payload, "devices", list, path)
        for name, values in (("models", models), ("devices", devices)):
            if not all(isinstance(v, str) for v in values):
                raise SweepError(f"{path}.{name} must be a list of strings")
        factors = payload.get("bandwidth_factors", [1.0])
        transfers = payload.get("transfer_bytes", [None])
        sizes = payload.get("fleet_sizes", [1])
        if not isinstance(factors, list) or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in factors
        ):
            raise SweepError(f"{path}.bandwidth_factors must be a number list")
        if not isinstance(transfers, list) or not all(
            v is None or (isinstance(v, int) and not isinstance(v, bool))
            for v in transfers
        ):
            raise SweepError(
                f"{path}.transfer_bytes must be a list of integers/null"
            )
        if not isinstance(sizes, list) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in sizes
        ):
            raise SweepError(f"{path}.fleet_sizes must be an integer list")
        return cls(
            models=tuple(models),
            devices=tuple(devices),
            bandwidth_factors=tuple(float(v) for v in factors),
            transfer_bytes=tuple(transfers),
            fleet_sizes=tuple(sizes),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "GridSpec":
        """Load a spec file — bare JSON or an envelope-wrapped one."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SweepError(f"cannot read grid spec {path}: {exc}") from None
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepError(
                f"grid spec {path} is not valid JSON (line {exc.lineno}: "
                f"{exc.msg})"
            ) from None
        if isinstance(document, dict) and ENVELOPE_KEY in document:
            document = parse_envelope(
                document, expected_kind=GRID_KIND, source=path
            ).payload
        return cls.from_dict(document)
