"""The parallel, resumable design-space sweep engine.

A sweep is an embarrassingly parallel bag of compile/partition jobs (the
:class:`~repro.dse.grid.GridPoint` expansion of a
:class:`~repro.dse.grid.GridSpec`), run through a ``multiprocessing``
pool with three pieces of shared state:

* the **persistent cost store** (:mod:`repro.dse.store`) — every worker
  warms its :class:`~repro.perf.cost.EvalContext` from it and flushes
  fresh evaluations back, so later points (and later *sweeps*) skip
  work earlier ones already paid for;
* the **journal** — each finished point is appended to
  ``journal.jsonl`` as an independently checksummed envelope line the
  moment it lands, so a killed sweep resumes with ``--resume`` skipping
  every completed point (matched by content-derived ``point_id``, not
  position);
* the **results artifact** — when the sweep completes, the full record
  set is written as one ``sweep_results`` envelope.

Strategies produced by a store-backed or ``workers=N`` sweep are
bit-identical to the in-memory single-process path: points are
independent, and every cached value is a pure function of its key
(asserted in ``tests/test_sweep_grid.py``).
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.check.artifacts import (
    append_envelope_line,
    payload_sha256,
    read_envelope_lines,
    save_artifact,
)
from repro.dse.grid import GridPoint, GridSpec
from repro.dse.store import CostStore, resolve_store
from repro.dse.supervisor import SupervisedPool
from repro.errors import ArtifactError, ReproError, SweepError, SweepInterrupted
from repro.faults.process import (
    POINT_SWEEP_DONE,
    POINT_SWEEP_JOURNALED,
    POINT_SWEEP_START,
    ProcessFaultSpec,
    clear_process_faults,
    crash_point,
    derive_seed,
    install_process_faults,
)

#: Artifact kinds of the journal lines and the final results file.
POINT_KIND = "sweep_point"
RESULTS_KIND = "sweep_results"

#: Journal and results file names inside the sweep output directory.
JOURNAL_NAME = "journal.jsonl"
RESULTS_NAME = "sweep_results.json"


def _resolve_grid_network(name: str):
    """Model-zoo name or prototxt path -> accelerated-prefix Network."""
    from repro.nn import models
    from repro.nn.caffe import network_from_prototxt

    zoo = models.catalog()
    if name in zoo:
        network = zoo[name]()
    else:
        path = Path(name)
        if not path.exists():
            raise SweepError(
                f"model {name!r} is neither a model-zoo name "
                f"({', '.join(sorted(zoo))}) nor an existing prototxt file"
            )
        network = network_from_prototxt(path.read_text())
    return network.accelerated_prefix()


def _execute_point(point: GridPoint, store: Optional[CostStore]) -> dict:
    """Run one grid point; returns its JSON-serializable result body."""
    from repro.hardware.device import get_device
    from repro.hardware.dse import scale_bandwidth
    from repro.optimizer.dp import optimize
    from repro.optimizer.serialize import strategy_to_dict
    from repro.perf.cost import EvalContext

    network = _resolve_grid_network(point.model)
    device = get_device(point.device)
    if point.bandwidth_factor != 1.0:
        device = scale_bandwidth(device, point.bandwidth_factor)
    context = EvalContext(store=store)
    if point.fleet_size == 1:
        transfer = point.transfer_bytes
        if transfer is None:
            transfer = network.feature_map_bytes(device.element_bytes)
        strategy = optimize(network, device, transfer, context=context)
        result = {
            "kind": "strategy",
            "latency_cycles": strategy.latency_cycles,
            "latency_seconds": strategy.latency_seconds(),
            "effective_gops": strategy.effective_gops(),
            "groups": len(strategy.designs),
            "strategy": strategy_to_dict(strategy),
        }
    else:
        from repro.partition.cut import partition_network
        from repro.partition.fleet import DeviceFleet

        fleet = DeviceFleet.from_spec([device] * point.fleet_size)
        plan = partition_network(
            network,
            fleet,
            transfer_constraint_bytes=point.transfer_bytes,
            context=context,
        )
        result = {
            "kind": "partition_plan",
            "stages": plan.num_stages,
            "latency_seconds": plan.latency_seconds,
            "bottleneck_seconds": plan.bottleneck_seconds,
            "effective_gops": plan.effective_gops(),
            "plan": plan.to_dict(),
        }
    # The point's result is already computed and correct; a failed
    # write-back only costs future warm starts.  EvalContext degrades
    # itself (counted in its telemetry); the belt-and-braces except
    # covers stores that are not EvalContext-managed.
    try:
        context.flush_store()
        telemetry = context.stats.to_dict()
    except (OSError, ArtifactError) as exc:
        telemetry = context.stats.to_dict()
        telemetry["store_flush_errors"] = 1
        telemetry["store_flush_error"] = str(exc)
    result["telemetry"] = telemetry
    return result


def run_point_job(job: dict) -> dict:
    """Pool worker entry: one grid point -> one journal record payload.

    Takes a plain dict (pickled across the process boundary) of the
    point, the store root and an optional
    :class:`~repro.faults.process.ProcessFaultSpec`; every
    :class:`~repro.errors.ReproError` is folded into the record so one
    infeasible point never kills the sweep.  The fault seed is derived
    per ``(point, attempt)``: a retried point redraws its fate, so an
    injected kill costs one requeue, never the whole sweep.
    """
    point = GridPoint.from_dict(job["point"])
    store = CostStore(job["store_root"]) if job.get("store_root") else None
    faults: Optional[ProcessFaultSpec] = job.get("faults")
    if faults is not None:
        install_process_faults(
            faults,
            seed=derive_seed(
                job.get("fault_seed", 0), point.point_id, job.get("attempt", 0)
            ),
        )
    started = time.perf_counter()
    try:
        crash_point(POINT_SWEEP_START)
        result = _execute_point(point, store)
        crash_point(POINT_SWEEP_DONE)
        ok, error = True, None
    except ReproError as exc:
        result, ok, error = {}, False, str(exc)
    finally:
        if faults is not None:
            clear_process_faults()
    return {
        "point_id": point.point_id,
        "point": point.to_dict(),
        "ok": ok,
        "error": error,
        "result": result,
        "elapsed_s": time.perf_counter() - started,
    }


def _worker_failure_record(job: dict, reason: str) -> dict:
    """The journal record for a point whose workers kept dying."""
    point = GridPoint.from_dict(job["point"])
    return {
        "point_id": point.point_id,
        "point": point.to_dict(),
        "ok": False,
        "error": f"retries exhausted: {reason}",
        "result": {},
        "elapsed_s": 0.0,
    }


def records_digest(records: List[dict]) -> str:
    """Checksum of a sweep's *outcomes*, ignoring how they were reached.

    Strips the volatile fields — wall time, computed-vs-resumed
    provenance, and cache/supervision telemetry — and hashes the rest
    (point identity, ok/error, the full result body).  Two sweeps of
    the same grid agree on this digest iff they produced bit-identical
    results, which is exactly the crash-consistency claim the torture
    harness asserts: a killed-and-resumed or fault-injected sweep must
    digest equal to an undisturbed one.
    """
    stripped = []
    for record in records:
        result = {
            key: value
            for key, value in (record.get("result") or {}).items()
            if key != "telemetry"
        }
        stripped.append(
            {
                "point_id": record.get("point_id"),
                "point": record.get("point"),
                "ok": record.get("ok"),
                "error": record.get("error"),
                "result": result,
            }
        )
    return payload_sha256({"records": stripped})


@dataclass
class SweepResult:
    """Everything one :meth:`SweepEngine.run` produced."""

    spec: GridSpec
    records: List[dict]
    computed: int
    resumed: int
    failed: int
    journal_skipped: int
    elapsed_s: float
    store_root: Optional[str]
    telemetry: Dict[str, int] = field(default_factory=dict)
    #: Duplicate journal lines for already-recorded points (requeued
    #: workers whose first record landed late); ignored on replay.
    journal_duplicates: int = 0
    #: Supervisor interventions (worker deaths, hangs, requeues, ...)
    #: plus engine degradations (pool/journal/store fallbacks).
    supervision: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def records_digest(self) -> str:
        """Outcome checksum (see :func:`records_digest`)."""
        return records_digest(self.records)

    @property
    def store_hit_rate(self) -> float:
        """Store hits / (store hits + evaluations) across computed points."""
        hits = self.telemetry.get("store_hits", 0)
        total = hits + self.telemetry.get("evaluations", 0)
        return hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "grid": self.spec.to_dict(),
            "grid_digest": self.spec.digest(),
            "points": len(self.records),
            "computed": self.computed,
            "resumed": self.resumed,
            "failed": self.failed,
            "journal_skipped": self.journal_skipped,
            "journal_duplicates": self.journal_duplicates,
            "records_digest": self.records_digest(),
            "supervision": dict(self.supervision),
            "elapsed_s": self.elapsed_s,
            "store": None
            if self.store_root is None
            else {
                "root": self.store_root,
                "hits": self.telemetry.get("store_hits", 0),
                "misses": self.telemetry.get("evaluations", 0),
                "hit_rate": self.store_hit_rate,
            },
            "records": self.records,
        }

    def summary(self) -> str:
        lines = [
            f"sweep of {len(self.records)} point(s): "
            f"{self.computed} computed, {self.resumed} resumed, "
            f"{self.failed} failed ({self.elapsed_s:.2f}s)",
        ]
        if self.store_root is not None:
            hits = self.telemetry.get("store_hits", 0)
            misses = self.telemetry.get("evaluations", 0)
            lines.append(
                f"cost store: {hits:,} hits / {misses:,} misses "
                f"({self.store_hit_rate * 100:.1f}% warm) at {self.store_root}"
            )
        if self.journal_skipped:
            lines.append(
                f"journal: {self.journal_skipped} damaged line(s) skipped "
                "and recomputed"
            )
        if self.journal_duplicates:
            lines.append(
                f"journal: {self.journal_duplicates} duplicate line(s) "
                "ignored on replay"
            )
        interventions = {
            name: count for name, count in self.supervision.items() if count
        }
        if interventions:
            lines.append(
                "supervision: "
                + ", ".join(
                    f"{count} {name}" for name, count in sorted(
                        interventions.items()
                    )
                )
            )
        return "\n".join(lines)


class SweepEngine:
    """Expand a grid, fan it out, journal it, resume it.

    Args:
        spec: The declarative grid.
        out_dir: Directory receiving the journal and results artifact
            (created if missing).
        store: Persistent cost store shared by every worker — a
            :class:`CostStore`, a path, or ``None`` to run memory-only.
        workers: Process-pool width; ``None``/``0``/``1`` runs inline
            (deterministic debugging path, same results).
        faults: Optional :class:`~repro.faults.process.ProcessFaultSpec`
            (or its string grammar) installed *in each worker* — the
            torture harness's handle for killing workers and failing
            their writes mid-sweep.  Inline runs strip the lethal kinds
            (``kill``/``crash``) so the engine process survives.
        fault_seed: Seed the per-(point, attempt) fault draws derive
            from.
        point_timeout_s: Per-point hang budget; a worker silent this
            long after picking a point up is terminated and the point
            requeued.  ``None`` disables hang detection.
        max_retries: Requeues per point after worker deaths/hangs before
            it is recorded as failed.
    """

    def __init__(
        self,
        spec: GridSpec,
        out_dir: Union[str, Path],
        store: Union[CostStore, str, Path, None] = None,
        workers: Optional[int] = None,
        faults: Union[ProcessFaultSpec, str, None] = None,
        fault_seed: int = 0,
        point_timeout_s: Optional[float] = None,
        max_retries: int = 2,
    ):
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.store = resolve_store(store)
        self.workers = workers
        if isinstance(faults, str):
            faults = ProcessFaultSpec.parse(faults)
        self.faults = faults if faults and not faults.empty else None
        self.fault_seed = fault_seed
        self.point_timeout_s = point_timeout_s
        self.max_retries = max_retries
        self.journal_path = self.out_dir / JOURNAL_NAME
        self.results_path = self.out_dir / RESULTS_NAME
        #: Engine-side degradations of the current/last run.
        self.degradations: Dict[str, int] = {}
        self._supervision: Dict[str, int] = {}

    # -- journal -------------------------------------------------------------

    def completed_records(self) -> tuple:
        """Journaled results keyed by point id: ``(records, skipped,
        duplicates)``.

        Replay is idempotent: when several journal lines claim the same
        ``point_id`` (a requeued point whose first worker's record
        landed late, or a re-run appending over an old journal), the
        first *successful* record is pinned — later duplicates are
        counted, never double-counted or allowed to flip a completed
        point back to failed.  A failed record is superseded by a later
        success (the retry that worked).
        """
        envelopes, skipped = read_envelope_lines(
            self.journal_path, expected_kind=POINT_KIND
        )
        records: Dict[str, dict] = {}
        duplicates = 0
        for envelope in envelopes:
            payload = envelope.payload
            point_id = payload.get("point_id")
            if not isinstance(point_id, str) or payload.get("ok") is None:
                continue
            existing = records.get(point_id)
            if existing is not None:
                duplicates += 1
                if existing.get("ok"):
                    continue
            records[point_id] = payload
        return records, skipped, duplicates

    def _journal(self, record: dict) -> None:
        """Append one record, riding out transient write errors.

        The journal is an optimization (resume granularity), not the
        result of record; a full disk must degrade the sweep to
        coarser resumability, not kill it.  Three attempts, then count
        the loss and warn once.
        """
        for attempt in range(3):
            try:
                append_envelope_line(self.journal_path, POINT_KIND, record)
                return
            except OSError as exc:
                last_error = exc
                time.sleep(0.05 * (attempt + 1))
        if not self.degradations.get("journal_write_errors"):
            warnings.warn(
                f"sweep journal write failed ({last_error}); the sweep "
                "continues but --resume will recompute the affected "
                "point(s)",
                RuntimeWarning,
                stacklevel=2,
            )
        self.degradations["journal_write_errors"] = (
            self.degradations.get("journal_write_errors", 0) + 1
        )

    # -- running -------------------------------------------------------------

    def run(
        self,
        resume: bool = False,
        log: Optional[Callable[[str], None]] = None,
    ) -> SweepResult:
        """Run (or finish) the sweep.

        With ``resume`` the existing journal is honored: completed
        points are reported from their journaled records and only the
        remainder is computed.  Without it any prior journal is
        discarded and every point recomputes (a warm cost store still
        accelerates that).
        """
        emit = log or (lambda _line: None)
        started = time.perf_counter()
        points = self.spec.expand()
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.degradations = {}
        self._supervision = {}

        done: Dict[str, dict] = {}
        journal_skipped = 0
        journal_duplicates = 0
        if resume:
            done, journal_skipped, journal_duplicates = self.completed_records()
            # Keep only successful records for points still in the grid;
            # failed points get another chance.
            grid_ids = {point.point_id for point in points}
            done = {
                pid: record
                for pid, record in done.items()
                if pid in grid_ids and record.get("ok")
            }
        elif self.journal_path.exists():
            self.journal_path.unlink()

        pending = [p for p in points if p.point_id not in done]
        if done:
            emit(f"resuming: {len(done)} point(s) already journaled")
        if pending:
            emit(
                f"computing {len(pending)} point(s)"
                + (f" on {self.workers} workers" if self._pool_size() else "")
            )

        computed: Dict[str, dict] = {}
        try:
            for record in self._run_pending(pending):
                self._journal(record)
                crash_point(POINT_SWEEP_JOURNALED)
                computed[record["point_id"]] = record
                point = GridPoint.from_dict(record["point"])
                status = "ok" if record["ok"] else f"FAILED: {record['error']}"
                emit(
                    f"  {point.describe()}: {status} "
                    f"({record['elapsed_s']:.2f}s)"
                )
        except KeyboardInterrupt:
            # The journal already holds every finished point (flushed
            # line by line); surface the resumable state as a typed,
            # one-line error instead of a traceback.  _run_pending's
            # finally block has torn the pool down by the time the
            # exception propagates here.
            raise SweepInterrupted(
                f"sweep interrupted: {len(done) + len(computed)} of "
                f"{len(points)} point(s) journaled in {self.out_dir}; "
                "re-run with --resume to finish"
            ) from None

        records = []
        telemetry: Dict[str, int] = {"evaluations": 0, "store_hits": 0,
                                     "cache_hits": 0, "store_degraded": 0,
                                     "store_flush_errors": 0}
        failed = 0
        for point in points:
            record = computed.get(point.point_id)
            if record is not None:
                record = dict(record, source="computed")
                stats = record.get("result", {}).get("telemetry") or {}
                for counter in telemetry:
                    value = stats.get(counter)
                    if isinstance(value, int):
                        telemetry[counter] += value
            else:
                record = dict(done[point.point_id], source="resumed")
            if not record.get("ok"):
                failed += 1
            records.append(record)

        supervision = dict(self._supervision)
        for name, count in self.degradations.items():
            supervision[name] = supervision.get(name, 0) + count
        result = SweepResult(
            spec=self.spec,
            records=records,
            computed=len(computed),
            resumed=len(records) - len(computed),
            failed=failed,
            journal_skipped=journal_skipped,
            elapsed_s=time.perf_counter() - started,
            store_root=str(self.store.root) if self.store else None,
            telemetry=telemetry,
            journal_duplicates=journal_duplicates,
            supervision=supervision,
        )
        save_artifact(
            self.results_path,
            RESULTS_KIND,
            result.to_dict(),
            digests={"grid": self.spec.digest()},
        )
        return result

    def _pool_size(self) -> int:
        """Worker processes to use; 0 means run inline."""
        if self.workers is None or self.workers <= 1:
            return 0
        return self.workers

    def _worker_faults(self, pooled: bool) -> Optional[ProcessFaultSpec]:
        """The fault spec one executed point sees.

        Inline execution shares the engine's process, so the lethal
        fault kinds (hard kills, crash points) are stripped — they are
        meaningful only where a supervisor can requeue the loss.
        """
        if self.faults is None:
            return None
        if pooled:
            return self.faults
        softened = dataclasses.replace(self.faults, kill_p=0.0, crash_at=None)
        return softened if not softened.empty else None

    def _run_pending(self, pending: List[GridPoint]):
        """Yield one journal record per pending point (pool or inline)."""
        size = self._pool_size()
        pooled = size > 0
        if pooled:
            try:
                import multiprocessing

                ctx = multiprocessing.get_context("fork")
            except (ImportError, ValueError, OSError) as exc:
                # No usable pool on this platform: degrade to the
                # inline path (same results, longer wall clock).
                warnings.warn(
                    f"worker pool unavailable ({exc}); sweeping inline",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.degradations["pool_fallbacks"] = 1
                pooled = False
        jobs = [
            {
                "point": point.to_dict(),
                "store_root": str(self.store.root) if self.store else None,
                "faults": self._worker_faults(pooled),
                "fault_seed": self.fault_seed,
                "attempt": 0,
            }
            for point in pending
        ]
        if not jobs:
            return
        if not pooled:
            for job in jobs:
                yield run_point_job(job)
            return
        pool = SupervisedPool(
            run_point_job,
            workers=min(size, len(jobs)),
            mp_context=ctx,
            timeout_s=self.point_timeout_s,
            max_retries=self.max_retries,
            on_exhausted=_worker_failure_record,
        )
        try:
            # Records land in completion order; the journal tolerates
            # any order and the results list is re-assembled in grid
            # order, so supervision never affects the artifact.
            for record in pool.run(jobs):
                yield record
        finally:
            self._supervision = pool.stats.to_dict()


def sweep_grid(
    spec: GridSpec,
    out_dir: Union[str, Path],
    store: Union[CostStore, str, Path, None] = None,
    workers: Optional[int] = None,
    resume: bool = False,
    log: Optional[Callable[[str], None]] = None,
    faults: Union[ProcessFaultSpec, str, None] = None,
    fault_seed: int = 0,
    point_timeout_s: Optional[float] = None,
    max_retries: int = 2,
) -> SweepResult:
    """One-call front end (what ``repro sweep-grid`` and
    :func:`repro.toolflow.sweep_grid` invoke)."""
    engine = SweepEngine(
        spec,
        out_dir,
        store=store,
        workers=workers,
        faults=faults,
        fault_seed=fault_seed,
        point_timeout_s=point_timeout_s,
        max_retries=max_retries,
    )
    return engine.run(resume=resume, log=log)
