"""The parallel, resumable design-space sweep engine.

A sweep is an embarrassingly parallel bag of compile/partition jobs (the
:class:`~repro.dse.grid.GridPoint` expansion of a
:class:`~repro.dse.grid.GridSpec`), run through a ``multiprocessing``
pool with three pieces of shared state:

* the **persistent cost store** (:mod:`repro.dse.store`) — every worker
  warms its :class:`~repro.perf.cost.EvalContext` from it and flushes
  fresh evaluations back, so later points (and later *sweeps*) skip
  work earlier ones already paid for;
* the **journal** — each finished point is appended to
  ``journal.jsonl`` as an independently checksummed envelope line the
  moment it lands, so a killed sweep resumes with ``--resume`` skipping
  every completed point (matched by content-derived ``point_id``, not
  position);
* the **results artifact** — when the sweep completes, the full record
  set is written as one ``sweep_results`` envelope.

Strategies produced by a store-backed or ``workers=N`` sweep are
bit-identical to the in-memory single-process path: points are
independent, and every cached value is a pure function of its key
(asserted in ``tests/test_sweep_grid.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.check.artifacts import (
    append_envelope_line,
    read_envelope_lines,
    save_artifact,
)
from repro.dse.grid import GridPoint, GridSpec
from repro.dse.store import CostStore, resolve_store
from repro.errors import ReproError, SweepError

#: Artifact kinds of the journal lines and the final results file.
POINT_KIND = "sweep_point"
RESULTS_KIND = "sweep_results"

#: Journal and results file names inside the sweep output directory.
JOURNAL_NAME = "journal.jsonl"
RESULTS_NAME = "sweep_results.json"


def _resolve_grid_network(name: str):
    """Model-zoo name or prototxt path -> accelerated-prefix Network."""
    from repro.nn import models
    from repro.nn.caffe import network_from_prototxt

    zoo = models.catalog()
    if name in zoo:
        network = zoo[name]()
    else:
        path = Path(name)
        if not path.exists():
            raise SweepError(
                f"model {name!r} is neither a model-zoo name "
                f"({', '.join(sorted(zoo))}) nor an existing prototxt file"
            )
        network = network_from_prototxt(path.read_text())
    return network.accelerated_prefix()


def _execute_point(point: GridPoint, store: Optional[CostStore]) -> dict:
    """Run one grid point; returns its JSON-serializable result body."""
    from repro.hardware.device import get_device
    from repro.hardware.dse import scale_bandwidth
    from repro.optimizer.dp import optimize
    from repro.optimizer.serialize import strategy_to_dict
    from repro.perf.cost import EvalContext

    network = _resolve_grid_network(point.model)
    device = get_device(point.device)
    if point.bandwidth_factor != 1.0:
        device = scale_bandwidth(device, point.bandwidth_factor)
    context = EvalContext(store=store)
    if point.fleet_size == 1:
        transfer = point.transfer_bytes
        if transfer is None:
            transfer = network.feature_map_bytes(device.element_bytes)
        strategy = optimize(network, device, transfer, context=context)
        result = {
            "kind": "strategy",
            "latency_cycles": strategy.latency_cycles,
            "latency_seconds": strategy.latency_seconds(),
            "effective_gops": strategy.effective_gops(),
            "groups": len(strategy.designs),
            "strategy": strategy_to_dict(strategy),
        }
    else:
        from repro.partition.cut import partition_network
        from repro.partition.fleet import DeviceFleet

        fleet = DeviceFleet.from_spec([device] * point.fleet_size)
        plan = partition_network(
            network,
            fleet,
            transfer_constraint_bytes=point.transfer_bytes,
            context=context,
        )
        result = {
            "kind": "partition_plan",
            "stages": plan.num_stages,
            "latency_seconds": plan.latency_seconds,
            "bottleneck_seconds": plan.bottleneck_seconds,
            "effective_gops": plan.effective_gops(),
            "plan": plan.to_dict(),
        }
    context.flush_store()
    result["telemetry"] = context.stats.to_dict()
    return result


def run_point_job(job: dict) -> dict:
    """Pool worker entry: one grid point -> one journal record payload.

    Takes a plain dict (pickled across the process boundary) of the
    point and the store root; every :class:`~repro.errors.ReproError`
    is folded into the record so one infeasible point never kills the
    sweep.
    """
    point = GridPoint.from_dict(job["point"])
    store = CostStore(job["store_root"]) if job.get("store_root") else None
    started = time.perf_counter()
    try:
        result = _execute_point(point, store)
        ok, error = True, None
    except ReproError as exc:
        result, ok, error = {}, False, str(exc)
    return {
        "point_id": point.point_id,
        "point": point.to_dict(),
        "ok": ok,
        "error": error,
        "result": result,
        "elapsed_s": time.perf_counter() - started,
    }


@dataclass
class SweepResult:
    """Everything one :meth:`SweepEngine.run` produced."""

    spec: GridSpec
    records: List[dict]
    computed: int
    resumed: int
    failed: int
    journal_skipped: int
    elapsed_s: float
    store_root: Optional[str]
    telemetry: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    @property
    def store_hit_rate(self) -> float:
        """Store hits / (store hits + evaluations) across computed points."""
        hits = self.telemetry.get("store_hits", 0)
        total = hits + self.telemetry.get("evaluations", 0)
        return hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "grid": self.spec.to_dict(),
            "grid_digest": self.spec.digest(),
            "points": len(self.records),
            "computed": self.computed,
            "resumed": self.resumed,
            "failed": self.failed,
            "journal_skipped": self.journal_skipped,
            "elapsed_s": self.elapsed_s,
            "store": None
            if self.store_root is None
            else {
                "root": self.store_root,
                "hits": self.telemetry.get("store_hits", 0),
                "misses": self.telemetry.get("evaluations", 0),
                "hit_rate": self.store_hit_rate,
            },
            "records": self.records,
        }

    def summary(self) -> str:
        lines = [
            f"sweep of {len(self.records)} point(s): "
            f"{self.computed} computed, {self.resumed} resumed, "
            f"{self.failed} failed ({self.elapsed_s:.2f}s)",
        ]
        if self.store_root is not None:
            hits = self.telemetry.get("store_hits", 0)
            misses = self.telemetry.get("evaluations", 0)
            lines.append(
                f"cost store: {hits:,} hits / {misses:,} misses "
                f"({self.store_hit_rate * 100:.1f}% warm) at {self.store_root}"
            )
        if self.journal_skipped:
            lines.append(
                f"journal: {self.journal_skipped} damaged line(s) skipped "
                "and recomputed"
            )
        return "\n".join(lines)


class SweepEngine:
    """Expand a grid, fan it out, journal it, resume it.

    Args:
        spec: The declarative grid.
        out_dir: Directory receiving the journal and results artifact
            (created if missing).
        store: Persistent cost store shared by every worker — a
            :class:`CostStore`, a path, or ``None`` to run memory-only.
        workers: Process-pool width; ``None``/``0``/``1`` runs inline
            (deterministic debugging path, same results).
    """

    def __init__(
        self,
        spec: GridSpec,
        out_dir: Union[str, Path],
        store: Union[CostStore, str, Path, None] = None,
        workers: Optional[int] = None,
    ):
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.store = resolve_store(store)
        self.workers = workers
        self.journal_path = self.out_dir / JOURNAL_NAME
        self.results_path = self.out_dir / RESULTS_NAME

    # -- journal -------------------------------------------------------------

    def completed_records(self) -> tuple:
        """Journaled results keyed by point id, plus damaged-line count."""
        envelopes, skipped = read_envelope_lines(
            self.journal_path, expected_kind=POINT_KIND
        )
        records: Dict[str, dict] = {}
        for envelope in envelopes:
            payload = envelope.payload
            point_id = payload.get("point_id")
            if isinstance(point_id, str) and payload.get("ok") is not None:
                records[point_id] = payload
        return records, skipped

    def _journal(self, record: dict) -> None:
        append_envelope_line(self.journal_path, POINT_KIND, record)

    # -- running -------------------------------------------------------------

    def run(
        self,
        resume: bool = False,
        log: Optional[Callable[[str], None]] = None,
    ) -> SweepResult:
        """Run (or finish) the sweep.

        With ``resume`` the existing journal is honored: completed
        points are reported from their journaled records and only the
        remainder is computed.  Without it any prior journal is
        discarded and every point recomputes (a warm cost store still
        accelerates that).
        """
        emit = log or (lambda _line: None)
        started = time.perf_counter()
        points = self.spec.expand()
        self.out_dir.mkdir(parents=True, exist_ok=True)

        done: Dict[str, dict] = {}
        journal_skipped = 0
        if resume:
            done, journal_skipped = self.completed_records()
            # Keep only successful records for points still in the grid;
            # failed points get another chance.
            grid_ids = {point.point_id for point in points}
            done = {
                pid: record
                for pid, record in done.items()
                if pid in grid_ids and record.get("ok")
            }
        elif self.journal_path.exists():
            self.journal_path.unlink()

        pending = [p for p in points if p.point_id not in done]
        if done:
            emit(f"resuming: {len(done)} point(s) already journaled")
        if pending:
            emit(
                f"computing {len(pending)} point(s)"
                + (f" on {self.workers} workers" if self._pool_size() else "")
            )

        computed: Dict[str, dict] = {}
        for record in self._run_pending(pending):
            self._journal(record)
            computed[record["point_id"]] = record
            point = GridPoint.from_dict(record["point"])
            status = "ok" if record["ok"] else f"FAILED: {record['error']}"
            emit(f"  {point.describe()}: {status} ({record['elapsed_s']:.2f}s)")

        records = []
        telemetry: Dict[str, int] = {"evaluations": 0, "store_hits": 0,
                                     "cache_hits": 0}
        failed = 0
        for point in points:
            record = computed.get(point.point_id)
            if record is not None:
                record = dict(record, source="computed")
                stats = record.get("result", {}).get("telemetry") or {}
                for counter in telemetry:
                    value = stats.get(counter)
                    if isinstance(value, int):
                        telemetry[counter] += value
            else:
                record = dict(done[point.point_id], source="resumed")
            if not record.get("ok"):
                failed += 1
            records.append(record)

        result = SweepResult(
            spec=self.spec,
            records=records,
            computed=len(computed),
            resumed=len(records) - len(computed),
            failed=failed,
            journal_skipped=journal_skipped,
            elapsed_s=time.perf_counter() - started,
            store_root=str(self.store.root) if self.store else None,
            telemetry=telemetry,
        )
        save_artifact(
            self.results_path,
            RESULTS_KIND,
            result.to_dict(),
            digests={"grid": self.spec.digest()},
        )
        return result

    def _pool_size(self) -> int:
        """Worker processes to use; 0 means run inline."""
        if self.workers is None or self.workers <= 1:
            return 0
        return self.workers

    def _run_pending(self, pending: List[GridPoint]):
        """Yield one journal record per pending point (pool or inline)."""
        jobs = [
            {
                "point": point.to_dict(),
                "store_root": str(self.store.root) if self.store else None,
            }
            for point in pending
        ]
        size = self._pool_size()
        if not jobs:
            return
        if size == 0:
            for job in jobs:
                yield run_point_job(job)
            return
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        with ctx.Pool(processes=min(size, len(jobs))) as pool:
            # imap (ordered) keeps the journal in grid order on the
            # happy path; resume correctness never depends on order.
            for record in pool.imap(run_point_job, jobs):
                yield record


def sweep_grid(
    spec: GridSpec,
    out_dir: Union[str, Path],
    store: Union[CostStore, str, Path, None] = None,
    workers: Optional[int] = None,
    resume: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """One-call front end (what ``repro sweep-grid`` and
    :func:`repro.toolflow.sweep_grid` invoke)."""
    engine = SweepEngine(spec, out_dir, store=store, workers=workers)
    return engine.run(resume=resume, log=log)
