"""repro.dse — persistent cost store + resumable design-space sweeps.

Two services on top of the single-device optimizer and the partitioner:

* :mod:`repro.dse.store` — a content-addressed, envelope-serialized
  on-disk cache of ``EvalContext.implement()`` results, shared across
  processes and sweeps (``repro cache {stats,gc,clear}``).
* :mod:`repro.dse.grid` / :mod:`repro.dse.sweep` — declarative sweep
  grids expanded into independent jobs, fanned out over a process
  pool, journaled per point for ``--resume`` (``repro sweep-grid``).

See ``docs/dse.md`` for the full guide.
"""

from repro.dse.grid import GRID_KIND, GridPoint, GridSpec
from repro.dse.store import (
    KEY_VERSION,
    STORE_ENV,
    CostStore,
    CostStoreStats,
    default_store_root,
    key_digest,
    resolve_store,
)
from repro.dse.supervisor import SupervisedPool, SupervisorStats
from repro.dse.sweep import (
    POINT_KIND,
    RESULTS_KIND,
    SweepEngine,
    SweepResult,
    records_digest,
    sweep_grid,
)

__all__ = [
    "GRID_KIND",
    "KEY_VERSION",
    "POINT_KIND",
    "RESULTS_KIND",
    "STORE_ENV",
    "CostStore",
    "CostStoreStats",
    "GridPoint",
    "GridSpec",
    "SupervisedPool",
    "SupervisorStats",
    "SweepEngine",
    "SweepResult",
    "default_store_root",
    "key_digest",
    "records_digest",
    "resolve_store",
    "sweep_grid",
]
