"""Supervised worker pool: the sweep's defense against dying workers.

``multiprocessing.Pool`` has a famous failure mode: a worker that dies
hard (OOM kill, segfault, an injected ``os._exit``) mid-task leaves
``imap`` waiting forever — a thousand-point sweep stalls at 99% with
nothing in the journal saying why.  This pool trades ``Pool``'s
generality for supervision:

* every worker is a directly-owned ``Process`` with its own one-job
  mailbox; the supervisor always knows which job each worker holds;
* workers **heartbeat** — a ``start`` message when they pick a job up —
  so a hang is measured from real pickup, not dispatch;
* the supervisor polls worker liveness while waiting for results: a
  **dead** worker (``is_alive()`` false, job unreported) or a **hung**
  one (no result within ``timeout_s`` of its heartbeat) is reaped, its
  in-flight job **requeued** with bounded retry + backoff, and a fresh
  worker spawned in its place;
* when a job exhausts ``max_retries`` the caller's ``on_exhausted``
  callback synthesizes a failure record — the sweep records the loss
  and moves on, it never stalls and never silently drops a point.

The pool yields records as they land (like ``imap_unordered``); callers
own ordering.  ``SupervisorStats`` counts every intervention so the
sweep's telemetry can report exactly how much supervision happened.
"""

from __future__ import annotations

import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Default in-flight retry budget per job (initial run + 2 retries).
DEFAULT_MAX_RETRIES = 2

#: Base requeue backoff; doubles per attempt so a crash-looping job
#: cannot hot-spin a worker.
DEFAULT_BACKOFF_S = 0.1

#: Supervisor poll interval while waiting on the result queue.
_POLL_S = 0.05


@dataclass
class SupervisorStats:
    """Every intervention the supervisor made, for sweep telemetry."""

    workers_spawned: int = 0
    worker_deaths: int = 0
    workers_hung: int = 0
    requeues: int = 0
    retries_exhausted: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "workers_spawned": self.workers_spawned,
            "worker_deaths": self.worker_deaths,
            "workers_hung": self.workers_hung,
            "requeues": self.requeues,
            "retries_exhausted": self.retries_exhausted,
        }

    @property
    def interventions(self) -> int:
        return self.worker_deaths + self.workers_hung


def _worker_main(worker_id: int, mailbox, results, worker_fn) -> None:
    """Worker loop: one job at a time, heartbeat at pickup, never raise.

    A worker that *returns* has been told to stop (``None`` job); a
    worker that vanishes any other way is a death the supervisor
    handles.  Exceptions are folded into an ``error`` message rather
    than escaping — a bad job must cost one retry, not the process.
    """
    while True:
        job = mailbox.get()
        if job is None:
            return
        results.put(("start", worker_id, None, None))
        try:
            record = worker_fn(job)
            results.put(("done", worker_id, record, None))
        except BaseException as exc:
            try:
                results.put(("error", worker_id, None, repr(exc)))
            except Exception:
                return  # queue gone: the supervisor is tearing down


@dataclass
class _WorkerSlot:
    process: object
    mailbox: object
    job: Optional[dict] = None
    started_at: Optional[float] = None
    dispatched_at: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.job is not None

    def deadline_clock(self) -> Optional[float]:
        """The instant hang-timeouts measure from (heartbeat, else
        dispatch)."""
        return self.started_at or self.dispatched_at


class SupervisedPool:
    """Run jobs through supervised worker processes; yield records.

    Args:
        worker_fn: Top-level picklable callable ``job dict -> record
            dict`` (the sweep passes
            :func:`repro.dse.sweep.run_point_job`).
        workers: Worker process count (>= 1).
        mp_context: A ``multiprocessing`` context (the sweep passes its
            fork context).
        timeout_s: Hang budget per job measured from the worker's pickup
            heartbeat; ``None`` disables hang detection (deaths are
            still detected).
        max_retries: Retries per job after its first failure before
            ``on_exhausted`` is consulted.
        on_exhausted: ``(job, reason) -> record`` synthesizing the
            failure record for a job that kept dying; ``None`` re-raises
            the loss as ``RuntimeError`` (library misuse — the sweep
            always provides one).
        attempt_key: Job-dict key carrying the attempt ordinal; the
            supervisor increments it on each requeue so workers can
            derive per-attempt fault seeds.
    """

    def __init__(
        self,
        worker_fn: Callable[[dict], dict],
        workers: int,
        mp_context,
        timeout_s: Optional[float] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        on_exhausted: Optional[Callable[[dict, str], dict]] = None,
        attempt_key: str = "attempt",
    ):
        self.worker_fn = worker_fn
        self.workers = max(1, workers)
        self.ctx = mp_context
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.on_exhausted = on_exhausted
        self.attempt_key = attempt_key
        self.stats = SupervisorStats()
        # Jobs whose retry budget ran out, awaiting on_exhausted.
        self._exhausted: List[tuple] = []

    # -- the run loop --------------------------------------------------------

    def run(self, jobs: List[dict]):
        """Yield one record per job, supervising until all have landed."""
        if not jobs:
            return
        results = self.ctx.Queue()
        # (not_before, job) — requeued jobs wait out their backoff.
        pending: List[tuple] = [(0.0, dict(job)) for job in jobs]
        outstanding = len(pending)
        slots: Dict[int, _WorkerSlot] = {}
        next_id = 0
        try:
            for _ in range(min(self.workers, len(pending))):
                slots[next_id] = self._spawn(next_id, results)
                next_id += 1
            while outstanding:
                now = time.monotonic()
                # Feed idle workers anything whose backoff has elapsed.
                for slot in slots.values():
                    if not pending:
                        break
                    if slot.busy:
                        continue
                    ready = next(
                        (i for i, (t, _) in enumerate(pending) if t <= now),
                        None,
                    )
                    if ready is None:
                        break
                    _, job = pending.pop(ready)
                    slot.job = job
                    slot.started_at = None
                    slot.dispatched_at = now
                    slot.mailbox.put(job)

                try:
                    kind, worker_id, record, error = results.get(
                        timeout=_POLL_S
                    )
                except queue_mod.Empty:
                    next_id = self._reap(slots, pending, results, next_id)
                    for done in self._drain_exhausted():
                        outstanding -= 1
                        yield done
                    continue

                slot = slots.get(worker_id)
                if slot is None:  # a message from an already-reaped worker
                    continue
                if kind == "start":
                    slot.started_at = time.monotonic()
                elif kind == "done":
                    slot.job = None
                    outstanding -= 1
                    yield record
                elif kind == "error":
                    job, slot.job = slot.job, None
                    if job is not None:
                        self._requeue(job, pending, f"worker raised {error}")
                        for done in self._drain_exhausted():
                            outstanding -= 1
                            yield done
        finally:
            self._shutdown(slots)

    # -- supervision ---------------------------------------------------------

    def _spawn(self, worker_id: int, results) -> _WorkerSlot:
        mailbox = self.ctx.Queue()
        process = self.ctx.Process(
            target=_worker_main,
            args=(worker_id, mailbox, results, self.worker_fn),
            daemon=True,
        )
        process.start()
        self.stats.workers_spawned += 1
        return _WorkerSlot(process=process, mailbox=mailbox)

    def _reap(self, slots, pending, results, next_id: int) -> int:
        """Detect dead/hung workers; requeue their jobs; respawn."""
        now = time.monotonic()
        for worker_id, slot in list(slots.items()):
            dead = not slot.process.is_alive()
            hung = (
                not dead
                and slot.busy
                and self.timeout_s is not None
                and slot.deadline_clock() is not None
                and now - slot.deadline_clock() > self.timeout_s
            )
            if not dead and not hung:
                continue
            if hung:
                self.stats.workers_hung += 1
                slot.process.terminate()
            else:
                self.stats.worker_deaths += 1
            slot.process.join(timeout=5.0)
            del slots[worker_id]
            if slot.job is not None:
                reason = "worker hung" if hung else (
                    f"worker died (exit {slot.process.exitcode})"
                )
                self._requeue(slot.job, pending, reason)
            # Replace the lost capacity (bounded by original width).
            if len(slots) < self.workers:
                slots[next_id] = self._spawn(next_id, results)
                next_id += 1
        return next_id

    def _requeue(self, job: dict, pending, reason: str) -> None:
        attempt = int(job.get(self.attempt_key, 0)) + 1
        if attempt > self.max_retries:
            self.stats.retries_exhausted += 1
            self._exhausted.append((job, reason))
            return
        self.stats.requeues += 1
        job = dict(job)
        job[self.attempt_key] = attempt
        not_before = time.monotonic() + self.backoff_s * (2 ** (attempt - 1))
        pending.append((not_before, job))

    def _drain_exhausted(self):
        for job, reason in self._exhausted:
            if self.on_exhausted is None:
                raise RuntimeError(
                    f"job exhausted its retries ({reason}) and no "
                    "on_exhausted handler was provided"
                )
            yield self.on_exhausted(job, reason)
        self._exhausted = []

    def _shutdown(self, slots) -> None:
        for slot in slots.values():
            try:
                slot.mailbox.put(None)
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for slot in slots.values():
            slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
        for slot in slots.values():
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=1.0)
