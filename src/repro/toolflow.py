"""End-to-end automated tool-flow (paper Section 3, Figure 3).

"It takes Caffe configuration file and specification of the target FPGA
as inputs and generates bitstream on FPGA."  Here the flow runs through
the same three components — architecture, optimal algorithm, code
generator — but terminates at HLS source + a cycle-approximate simulation
instead of a Vivado bitstream (no Vivado in this environment; see
DESIGN.md).

Typical use::

    from repro.toolflow import compile_model
    result = compile_model("model.prototxt", device="zc706",
                           transfer_constraint_bytes=2 * 2**20)
    print(result.strategy.report())
    result.project.write_to("hls_out/")

Branching (DAG) models are first-class: a prototxt with fork–join
structure resolves to a :class:`repro.nn.graph.Graph` and routes through
:func:`compile_graph` / the DAG partitioner, returning a
:class:`GraphCompileResult` whose strategy prices branches natively
(see ``docs/ir.md``).  Chain models are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import OptimizationError
from repro.codegen.generator import GeneratedProject, generate_project
from repro.hardware.device import FPGADevice, get_device
from repro.nn.caffe import model_from_prototxt
from repro.nn.graph import Graph
from repro.nn.network import Network
from repro.optimizer.dp import _flush_context, _store_context, optimize
from repro.optimizer.graph_dp import GraphStrategy, optimize_graph
from repro.optimizer.strategy import Strategy
from repro.partition.cut import partition_network
from repro.partition.fleet import DeviceFleet, Link
from repro.partition.graph_cut import GraphPartitionPlan, partition_graph
from repro.partition.plan import PartitionPlan
from repro.perf.cost import CostModel, SearchTelemetry
from repro.sim.simulator import SimulationResult, simulate_strategy


@dataclass
class CompileResult:
    """Everything the tool-flow produces for one network."""

    network: Network
    device: FPGADevice
    strategy: Strategy
    project: GeneratedProject

    @property
    def telemetry(self) -> Optional[SearchTelemetry]:
        """Search telemetry of the optimize step (``repro compile --stats``)."""
        return self.strategy.telemetry

    def simulate(
        self, data: Optional[np.ndarray] = None, weights=None, seed: int = 0
    ) -> SimulationResult:
        """Run the cycle-approximate simulator on the compiled design.

        ``seed`` controls the generated input *and* the random weights
        (when not supplied), so repeated runs are bit-identical and a
        different seed gives an independent sample.
        """
        rng = np.random.default_rng(seed)
        if data is None:
            data = rng.normal(0, 0.5, self.network.input_spec.shape)
        return simulate_strategy(self.strategy, data, weights, rng=rng)

    def serve(
        self,
        replicas: int = 1,
        policy: str = "least_loaded",
        max_batch: int = 8,
        max_wait_cycles: Optional[float] = None,
        faults=None,
        fault_seed: int = 0,
        retry=None,
        max_queue: Optional[int] = None,
        slo_cycles: Optional[float] = None,
        resilience=None,
        fallback: Optional[Strategy] = None,
        verify: bool = True,
    ) -> "FleetScheduler":
        """Stand up a simulated serving fleet for this compiled design.

        Returns a :class:`repro.serve.FleetScheduler` whose ``run`` /
        ``run_open_loop`` methods serve request traces through
        ``replicas`` copies of the accelerator with dynamic batching.
        Pass ``faults`` (a :class:`repro.faults.FaultSpec` or its CLI
        string form) for deterministic chaos runs — see
        :mod:`repro.faults`.  ``resilience`` attaches the
        :mod:`repro.resilience` control plane; ``fallback`` is a
        lower-resource strategy for its warm-swap rung (see
        :meth:`fallback_strategy`).  ``verify`` re-runs the strategy
        invariant validators at admission (see :mod:`repro.check`).
        """
        from repro.serve.scheduler import FleetScheduler

        return FleetScheduler.for_strategy(
            self.strategy,
            replicas=replicas,
            policy=policy,
            max_batch=max_batch,
            max_wait_cycles=max_wait_cycles,
            faults=faults,
            fault_seed=fault_seed,
            retry=retry,
            max_queue=max_queue,
            slo_cycles=slo_cycles,
            resilience=resilience,
            fallback=fallback,
            verify=verify,
        )

    def fallback_strategy(self) -> Strategy:
        """A lower-resource fallback pre-compiled for the ladder's swap rung.

        Re-optimizes the same network on the same device restricted to
        the conventional algorithm everywhere — uniformly cheaper in DSP
        demand than the heterogeneous optimum, with the same transfer
        constraint the primary compile used — so the control plane can
        warm-swap to it when the primary degrades.
        """
        from repro.baselines.homogeneous import homogeneous_optimize
        from repro.perf.implement import Algorithm

        constraint = self.network.feature_map_bytes(self.device.element_bytes)
        return homogeneous_optimize(
            self.network, self.device, constraint, Algorithm.CONVENTIONAL
        )

    def summary(self) -> str:
        return "\n".join(
            [
                f"tool-flow result for {self.network.name!r} on {self.device.name}",
                self.strategy.report(),
                f"generated sources: {', '.join(self.project.source_names())}",
            ]
        )


@dataclass
class GraphCompileResult:
    """Tool-flow output for a branching (DAG) model.

    The graph sibling of :class:`CompileResult`: same simulate / serve /
    summary hooks, but the strategy is a
    :class:`~repro.optimizer.graph_dp.GraphStrategy` whose stages may be
    whole fork–join blocks.  There is no ``project`` field — HLS code
    generation is chain-only; flatten the graph first (see
    ``docs/ir.md``) if you need generated sources.
    """

    graph: Graph
    device: FPGADevice
    strategy: GraphStrategy

    @property
    def telemetry(self) -> Optional[SearchTelemetry]:
        return self.strategy.telemetry

    def simulate(
        self, data: Optional[np.ndarray] = None, weights=None, seed: int = 0
    ):
        """Run the cycle-approximate simulator on the compiled design.

        Same seed contract as :meth:`CompileResult.simulate`: ``seed``
        controls the generated input and the random weights, so repeated
        runs are bit-identical.
        """
        from repro.sim.graph import simulate_graph_strategy

        rng = np.random.default_rng(seed)
        if data is None:
            data = rng.normal(0, 0.5, self.graph.input_spec.shape)
        return simulate_graph_strategy(self.strategy, data, weights, rng=rng)

    def serve(
        self,
        replicas: int = 1,
        policy: str = "least_loaded",
        max_batch: int = 8,
        max_wait_cycles: Optional[float] = None,
        faults=None,
        fault_seed: int = 0,
        retry=None,
        max_queue: Optional[int] = None,
        slo_cycles: Optional[float] = None,
        resilience=None,
        verify: bool = True,
    ) -> "FleetScheduler":
        """Stand up a simulated serving fleet for this compiled graph.

        Branch stages are lowered to the standard pipelined service
        model (see :func:`repro.sim.build_graph_service_model`), so the
        scheduler, batching and fault machinery are shared with the
        chain path unchanged (``resilience`` included; graph strategies
        have no fallback rung).
        """
        from repro.serve.scheduler import FleetScheduler

        return FleetScheduler.for_graph_strategy(
            self.strategy,
            replicas=replicas,
            policy=policy,
            max_batch=max_batch,
            max_wait_cycles=max_wait_cycles,
            faults=faults,
            fault_seed=fault_seed,
            retry=retry,
            max_queue=max_queue,
            slo_cycles=slo_cycles,
            resilience=resilience,
            verify=verify,
        )

    def summary(self) -> str:
        return "\n".join(
            [
                f"tool-flow result for {self.graph.name!r} on {self.device.name}",
                self.strategy.report(),
            ]
        )


def _resolve_model(
    model: Union[str, Path, Network, Graph]
) -> Union[Network, Graph]:
    """Resolve the model input to a Network (linear) or Graph (branching).

    Prototxt sources go through :func:`repro.nn.caffe.model_from_prototxt`,
    which returns a plain :class:`Network` whenever the topology is a
    chain — so existing chain flows are untouched — and a
    :class:`Graph` only for genuinely branching models.
    """
    if isinstance(model, (Network, Graph)):
        return model
    if isinstance(model, str) and "\n" in model:
        # Multi-line string: prototxt text, not a path.
        return model_from_prototxt(model)
    path = Path(model)
    if path.exists():
        return model_from_prototxt(path.read_text())
    if isinstance(model, str) and "layer" in model:
        return model_from_prototxt(model)
    raise OptimizationError(f"cannot interpret model input {str(model)[:80]!r}")


def _resolve_network(model: Union[str, Path, Network]) -> Network:
    resolved = _resolve_model(model)
    if isinstance(resolved, Graph):
        raise OptimizationError(
            f"model {resolved.name!r} is a branching graph; "
            "this entry point only handles linear networks"
        )
    return resolved


def compile_graph(
    model: Union[str, Path, Graph],
    device: Union[str, FPGADevice] = "zc706",
    transfer_constraint_bytes: Optional[int] = None,
    accelerated_only: bool = True,
    explore_tile_sizes: bool = False,
    workers: Optional[int] = None,
    context: Optional[CostModel] = None,
    verify: bool = True,
    store=None,
) -> GraphCompileResult:
    """Map a branching (DAG) model onto an FPGA.

    The graph sibling of :func:`compile_model`: fork–join blocks are
    optimized natively by :func:`repro.optimizer.graph_dp.optimize_graph`
    instead of being flattened into macro-layers.  Chain graphs produce
    a strategy bit-identical to the chain optimizer's (the graph DP
    degenerates exactly; see ``docs/ir.md``).

    Accepts a :class:`Graph`, prototxt text, or a prototxt path; a
    linear model is wrapped via :meth:`Graph.from_network`.  All the
    shared knobs (``transfer_constraint_bytes`` = the paper's T,
    ``explore_tile_sizes``, ``workers``, ``context``, ``store``,
    ``verify``) behave as in :func:`compile_model`; ``verify`` runs the
    branch-aware :func:`repro.check.verify_graph_strategy` validators.
    No HLS project is generated — codegen is chain-only.
    """
    resolved = _resolve_model(model)
    graph = (
        Graph.from_network(resolved) if isinstance(resolved, Network) else resolved
    )
    if accelerated_only:
        graph = graph.accelerated_subgraph()
    if len(graph) == 0:
        raise OptimizationError("no accelerator-eligible layers in the model")
    target = get_device(device) if isinstance(device, str) else device
    if transfer_constraint_bytes is None:
        transfer_constraint_bytes = graph.feature_map_bytes(
            element_bytes=target.element_bytes
        )
    strategy = optimize_graph(
        graph, target, transfer_constraint_bytes,
        explore_tile_sizes=explore_tile_sizes,
        workers=workers, context=context, store=store,
    )
    if verify:
        from repro.check.invariants import verify_graph_strategy

        verify_graph_strategy(
            strategy, transfer_constraint_bytes=transfer_constraint_bytes
        ).raise_if_failed()
    return GraphCompileResult(graph=graph, device=target, strategy=strategy)


def compile_model(
    model: Union[str, Path, Network],
    device: Union[str, FPGADevice] = "zc706",
    transfer_constraint_bytes: Optional[int] = None,
    output_dir: Optional[Path] = None,
    accelerated_only: bool = True,
    explore_tile_sizes: bool = False,
    weights: Optional[dict] = None,
    workers: Optional[int] = None,
    context: Optional[CostModel] = None,
    verify: bool = True,
    store=None,
) -> CompileResult:
    """Map a Caffe model (or Network) onto an FPGA.

    Args:
        model: Prototxt path, prototxt text, or an in-memory Network.
        device: Device catalog name or an FPGADevice.
        transfer_constraint_bytes: The paper's T; defaults to the
            unfused feature-map traffic (i.e. effectively unconstrained).
        output_dir: If given, the HLS project is written there.
        accelerated_only: Drop trailing FC/softmax layers (run host-side,
            as the paper does) before optimizing.
        explore_tile_sizes: Also search Winograd tile sizes m in
            {2, 4, 6} per layer (extension; the paper fixes m = 4).
        weights: Optional trained parameters; when given the project
            includes quantized weight headers (Winograd kernels
            pre-transformed).
        workers: Precompute the independent ``fusion[i][j]`` searches
            with a thread pool of this size (strategy-preserving;
            CLI ``--workers``).
        context: Shared :class:`~repro.perf.cost.EvalContext` to reuse
            cost evaluations across compiles (e.g. device sweeps).
        verify: Run the :func:`repro.check.verify_strategy` invariant
            validators on the optimized strategy before code generation
            (CLI ``--no-verify`` disables; the verified path's output is
            bit-identical to the unverified one).
        store: Persistent cost store (:class:`repro.dse.CostStore` or
            its root path; CLI ``--cache``) to warm the search from and
            flush fresh evaluations to.  Strategy output is
            bit-identical with or without it.

    Returns:
        The strategy, the generated HLS project, and simulation hooks.
        Search telemetry is available as ``result.telemetry``.

    Raises:
        VerificationError: When ``verify`` is set and the optimizer
            produced a strategy violating its own invariants.

    A branching (DAG) model — a :class:`Graph` or a prototxt with
    fork–join structure — is routed to :func:`compile_graph` and yields
    a :class:`GraphCompileResult` (no HLS project; codegen is
    chain-only, so ``output_dir`` / ``weights`` are rejected for
    graphs).
    """
    resolved = _resolve_model(model)
    if isinstance(resolved, Graph):
        if output_dir is not None or weights is not None:
            raise OptimizationError(
                "HLS code generation is chain-only; compile a branching "
                "graph without output_dir/weights (see docs/ir.md)"
            )
        return compile_graph(
            resolved,
            device=device,
            transfer_constraint_bytes=transfer_constraint_bytes,
            accelerated_only=accelerated_only,
            explore_tile_sizes=explore_tile_sizes,
            workers=workers,
            context=context,
            verify=verify,
            store=store,
        )
    network = resolved
    if accelerated_only:
        network = network.accelerated_prefix()
    if len(network) == 0:
        raise OptimizationError("no accelerator-eligible layers in the model")
    target = get_device(device) if isinstance(device, str) else device
    if transfer_constraint_bytes is None:
        transfer_constraint_bytes = network.feature_map_bytes(target.element_bytes)
    context = _store_context(context, store)
    strategy = optimize(
        network, target, transfer_constraint_bytes,
        explore_tile_sizes=explore_tile_sizes,
        workers=workers, context=context,
    )
    if verify:
        from repro.check.invariants import verify_strategy

        verify_strategy(
            strategy, transfer_constraint_bytes=transfer_constraint_bytes
        ).raise_if_failed()
    project = generate_project(strategy, output_dir=output_dir, weights=weights)
    return CompileResult(
        network=network, device=target, strategy=strategy, project=project
    )


def partition_model(
    model: Union[str, Path, Network],
    devices: Union[str, Sequence, DeviceFleet] = "zc706,zc706",
    link: Optional[Link] = None,
    transfer_constraint_bytes: Optional[int] = None,
    accelerated_only: bool = True,
    explore_tile_sizes: bool = False,
    node_budget: int = 250_000,
    workers: Optional[int] = None,
    context: Optional[CostModel] = None,
    verify: bool = True,
    store=None,
) -> PartitionPlan:
    """Split a model across a fleet of FPGAs for pipelined execution.

    The multi-device sibling of :func:`compile_model`: the same model
    resolution and accelerated-prefix trimming, but the optimization
    axis gains device boundaries — the cut-point DP of
    :mod:`repro.partition.cut` places each contiguous layer range on one
    fleet device, pricing every candidate stage with the single-device
    DP through a shared evaluation context.

    Args:
        model: Prototxt path, prototxt text, or an in-memory Network.
        devices: Fleet spec — ``"zc706,zcu102"``, a sequence of catalog
            names / :class:`FPGADevice` objects, or a ready
            :class:`~repro.partition.fleet.DeviceFleet`.
        link: Link used between every adjacent device pair when
            ``devices`` is not already a fleet (default: the 2 GB/s
            board-to-board link).
        transfer_constraint_bytes: Optional per-stage DRAM feature-map
            budget (each board gets the paper's T separately).
        accelerated_only / explore_tile_sizes / node_budget / workers /
            context / verify / store: As in :func:`compile_model`
            (``verify`` runs :func:`repro.check.verify_plan` on the
            finished plan).

    Returns:
        A :class:`~repro.partition.plan.PartitionPlan` with one
        single-device :class:`Strategy` per stage plus ``simulate()``
        and ``serve()`` hooks.  A 1-device fleet returns a plan whose
        stage strategy is exactly the single-device optimum.

    A branching (DAG) model is routed to
    :func:`repro.partition.graph_cut.partition_graph` — stages cut on
    DAG edges, whole fork–join blocks kept on one device — and returns
    a :class:`~repro.partition.graph_cut.GraphPartitionPlan`.
    """
    resolved = _resolve_model(model)
    if isinstance(resolved, Graph):
        return _partition_graph_model(
            resolved,
            devices,
            link=link,
            transfer_constraint_bytes=transfer_constraint_bytes,
            accelerated_only=accelerated_only,
            explore_tile_sizes=explore_tile_sizes,
            node_budget=node_budget,
            workers=workers,
            context=context,
            verify=verify,
            store=store,
        )
    network = resolved
    if accelerated_only:
        network = network.accelerated_prefix()
    if len(network) == 0:
        raise OptimizationError("no accelerator-eligible layers in the model")
    if isinstance(devices, DeviceFleet):
        fleet = devices
    else:
        fleet = DeviceFleet.from_spec(devices, link=link)
    context = _store_context(context, store)
    plan = partition_network(
        network,
        fleet,
        transfer_constraint_bytes=transfer_constraint_bytes,
        explore_tile_sizes=explore_tile_sizes,
        node_budget=node_budget,
        context=context,
        workers=workers,
    )
    _flush_context(context)
    if verify:
        from repro.check.invariants import verify_plan

        verify_plan(plan).raise_if_failed()
    return plan


def _partition_graph_model(
    graph: Graph,
    devices: Union[str, Sequence, DeviceFleet],
    link: Optional[Link] = None,
    transfer_constraint_bytes: Optional[int] = None,
    accelerated_only: bool = True,
    explore_tile_sizes: bool = False,
    node_budget: int = 250_000,
    workers: Optional[int] = None,
    context: Optional[CostModel] = None,
    verify: bool = True,
    store=None,
) -> GraphPartitionPlan:
    """The DAG leg of :func:`partition_model`."""
    if accelerated_only:
        graph = graph.accelerated_subgraph()
    if len(graph) == 0:
        raise OptimizationError("no accelerator-eligible layers in the model")
    if isinstance(devices, DeviceFleet):
        fleet = devices
    else:
        fleet = DeviceFleet.from_spec(devices, link=link)
    context = _store_context(context, store)
    plan = partition_graph(
        graph,
        fleet,
        transfer_constraint_bytes=transfer_constraint_bytes,
        explore_tile_sizes=explore_tile_sizes,
        node_budget=node_budget,
        context=context,
        workers=workers,
    )
    _flush_context(context)
    if verify:
        from repro.check.invariants import verify_graph_strategy

        for placement in plan.placements:
            verify_graph_strategy(placement.strategy).raise_if_failed()
    return plan


def sweep_grid(
    spec,
    out_dir,
    store=None,
    workers: Optional[int] = None,
    resume: bool = False,
    log=None,
    faults=None,
    fault_seed: int = 0,
    point_timeout_s: Optional[float] = None,
    max_retries: int = 2,
):
    """Run a declarative design-space sweep (see :mod:`repro.dse`).

    The batch sibling of :func:`compile_model` / :func:`partition_model`:
    ``spec`` (a :class:`repro.dse.GridSpec`, a spec dict, or a JSON spec
    file path) expands into independent compile/partition points, fanned
    out over ``workers`` processes, each warming from and flushing to
    the shared persistent cost ``store``.  Per-point results are
    journaled into ``out_dir`` as they land, so an interrupted sweep
    finishes with ``resume=True`` without recomputing (CLI
    ``repro sweep-grid``).  Workers are supervised: a killed or hung
    worker's point is requeued (``max_retries`` times, hang budget
    ``point_timeout_s``), and ``faults`` injects deterministic
    process/filesystem failures for torture runs
    (:class:`repro.faults.ProcessFaultSpec` grammar, seeded by
    ``fault_seed``).  Returns a :class:`repro.dse.SweepResult`.
    """
    from repro.dse.grid import GridSpec
    from repro.dse.sweep import sweep_grid as _sweep

    if isinstance(spec, dict):
        spec = GridSpec.from_dict(spec)
    elif isinstance(spec, (str, Path)):
        spec = GridSpec.from_file(spec)
    return _sweep(
        spec,
        out_dir,
        store=store,
        workers=workers,
        resume=resume,
        log=log,
        faults=faults,
        fault_seed=fault_seed,
        point_timeout_s=point_timeout_s,
        max_retries=max_retries,
    )


def plan_capacity(demands, **kwargs):
    """Size a shared multi-tenant fleet against per-model SLOs.

    The serving-capacity sibling of :func:`sweep_grid`: each
    :class:`repro.capacity.TenantDemand` pairs a model with its traffic
    (a :mod:`repro.traffic` arrival spec) and SLOs, and the planner
    searches device x replicas x batching x scheduler weights for the
    cheapest feasible fleet (board cost, then energy), compiling every
    model through one shared evaluation context.  Keyword arguments are
    forwarded to :func:`repro.capacity.plan_capacity`; returns the
    chosen :class:`repro.capacity.CapacityPlan` (CLI
    ``repro plan-capacity``).
    """
    from repro.capacity import plan_capacity as _plan

    return _plan(demands, **kwargs)
