"""Circular line buffer (paper Section 4.2).

The fusion architecture replaces Alwani et al.'s tile-based reuse buffers
with a circular line buffer of ``K + S`` image rows per layer: rows
``[1, K]`` are convolved while the next ``S`` rows stream in, then the
window advances by ``S`` rows modulo ``K + S``.  Data reuse across
overlapping windows falls out of the addressing with no boundary-case
management.

This module provides both the *functional* model — a
:class:`CircularLineBuffer` whose row-streaming convolution
(:func:`stream_conv2d`) is bit-identical to the batch reference, proving
the architecture computes the right thing — and the *cost* model
(:func:`line_buffer_brams`, :func:`line_buffer_bits`) used by the
optimizer's ``implement()`` evaluator.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ShapeError, SimulationError

#: Usable bits in one Xilinx BRAM18K tile.
BRAM18K_BITS = 18 * 1024


class CircularLineBuffer:
    """A circular buffer of ``depth`` image rows across all channels.

    Rows are pushed one at a time; once at least ``window`` rows are
    resident, :meth:`window_rows` yields the oldest ``window`` rows in
    arrival order (the convolution working set).  :meth:`advance`
    retires the oldest ``stride`` rows, exactly as the hardware buffer
    reuses lines ``[1+S, (K+S) % (K+S)]`` (paper Figure 2b).
    """

    def __init__(self, depth: int, window: int, row_shape: Tuple[int, ...]):
        if depth < window:
            raise ShapeError(f"depth {depth} smaller than window {window}")
        if window < 1:
            raise ShapeError(f"window must be positive, got {window}")
        self._depth = depth
        self._window = window
        self._row_shape = tuple(row_shape)
        self._storage: List[Optional[np.ndarray]] = [None] * depth
        self._head = 0  # physical slot of the logically oldest row
        self._count = 0  # rows currently resident
        self._pushed = 0

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def window(self) -> int:
        return self._window

    @property
    def resident_rows(self) -> int:
        return self._count

    @property
    def total_pushed(self) -> int:
        return self._pushed

    @property
    def has_window(self) -> bool:
        """True when a full convolution window is available."""
        return self._count >= self._window

    @property
    def is_full(self) -> bool:
        return self._count == self._depth

    def push_row(self, row: np.ndarray) -> None:
        """Append the next image row; raises if the buffer is full."""
        row = np.asarray(row)
        if tuple(row.shape) != self._row_shape:
            raise ShapeError(
                f"row shape {row.shape} != expected {self._row_shape}"
            )
        if self.is_full:
            raise SimulationError(
                "line buffer overflow: push without matching advance"
            )
        slot = (self._head + self._count) % self._depth
        self._storage[slot] = row
        self._count += 1
        self._pushed += 1

    def window_rows(self) -> List[np.ndarray]:
        """The oldest ``window`` rows, oldest first."""
        if not self.has_window:
            raise SimulationError(
                f"window of {self._window} rows requested but only "
                f"{self._count} resident"
            )
        rows = []
        for offset in range(self._window):
            slot = (self._head + offset) % self._depth
            row = self._storage[slot]
            assert row is not None
            rows.append(row)
        return rows

    def advance(self, stride: int) -> None:
        """Retire the ``stride`` oldest rows (window slides down)."""
        if stride < 1:
            raise ShapeError(f"stride must be positive, got {stride}")
        if stride > self._count:
            raise SimulationError(
                f"cannot retire {stride} rows, only {self._count} resident"
            )
        for offset in range(stride):
            self._storage[(self._head + offset) % self._depth] = None
        self._head = (self._head + stride) % self._depth
        self._count -= stride


def stream_conv2d(
    row_source: Iterator[np.ndarray],
    weights: np.ndarray,
    bias: Optional[np.ndarray],
    height: int,
    stride: int = 1,
    pad: int = 0,
    relu: bool = False,
    extra_depth: int = 0,
) -> Iterator[np.ndarray]:
    """Row-streaming convolution through a circular line buffer.

    Consumes input rows of shape ``(M, W)`` one at a time and yields
    output rows of shape ``(N, W')`` as soon as they are computable —
    the exact production discipline of the fused pipeline.  Padding rows
    are injected locally so upstream layers never see the halo.

    Args:
        row_source: Iterator over the ``height`` input rows.
        weights: ``(N, M, K, K)`` kernels.
        bias: Optional ``(N,)`` bias.
        height: Number of input rows the source will produce.
        stride: Kernel stride ``S``.
        pad: Symmetric padding.
        relu: Apply ReLU to each output row (conv+ReLU integration).
        extra_depth: Additional buffer lines beyond ``K + S`` (Winograd
            engines buffer ``alpha + m`` lines; see perf models).
    """
    n_out, n_in, kernel, kernel2 = weights.shape
    if kernel != kernel2:
        raise ShapeError("only square kernels supported")
    depth = kernel + stride + extra_depth
    padded_height = height + 2 * pad

    first_row = None
    width = None
    buffer = None

    def padded_rows() -> Iterator[np.ndarray]:
        nonlocal width
        produced = 0
        for row in row_source:
            row = np.asarray(row)
            if width is None:
                width = row.shape[1]
            for _ in range(pad if produced == 0 else 0):
                yield np.zeros((n_in, width + 2 * pad))
            padded = np.zeros((n_in, width + 2 * pad))
            padded[:, pad : pad + width] = row
            produced += 1
            yield padded
        if width is None:
            raise ShapeError("row source produced no rows")
        for _ in range(pad):
            yield np.zeros((n_in, width + 2 * pad))

    out_rows = (padded_height - kernel) // stride + 1
    emitted = 0
    base = 0  # padded-row index of the oldest resident row
    buffer = None
    for row in padded_rows():
        if buffer is None:
            buffer = CircularLineBuffer(depth, kernel, row.shape)
        if buffer.is_full:
            # The oldest rows below the next window's start are dead.
            retire = min(buffer.resident_rows - 1, emitted * stride - base)
            if retire <= 0:
                raise SimulationError("line buffer deadlock: no retirable rows")
            buffer.advance(retire)
            base += retire
        buffer.push_row(row)
        while emitted < out_rows and buffer.total_pushed >= emitted * stride + kernel:
            start = emitted * stride
            if start > base:
                buffer.advance(start - base)
                base = start
            window = np.stack(buffer.window_rows(), axis=1)  # (M, K, Wp)
            out_width = (window.shape[2] - kernel) // stride + 1
            out = np.zeros((n_out, out_width))
            for u in range(kernel):
                for v in range(kernel):
                    cols = window[:, u, v : v + stride * out_width : stride]
                    out += weights[:, :, u, v] @ cols
            if bias is not None:
                out += bias.reshape(-1, 1)
            if relu:
                out = np.maximum(out, 0)
            yield out
            emitted += 1
    if emitted != out_rows:
        raise SimulationError(
            f"stream ended after {emitted} of {out_rows} output rows"
        )


def line_buffer_bits(
    lines: int, width: int, channels: int, element_bits: int = 16
) -> int:
    """Storage bits for a ``lines x width x channels`` line buffer."""
    if min(lines, width, channels, element_bits) < 1:
        raise ShapeError("line buffer dimensions must be positive")
    return lines * width * channels * element_bits


def line_buffer_brams(
    lines: int, width: int, channels: int, element_bits: int = 16
) -> int:
    """BRAM18K tiles for a line buffer.

    The HLS templates partition the buffer by line so each of the ``K``
    window rows can be read every cycle; hence at least one BRAM per
    line, and enough tiles in total for the bits.
    """
    bits = line_buffer_bits(lines, width, channels, element_bits)
    return max(lines, -(-bits // BRAM18K_BITS))


def buffer_brams(bits: int) -> int:
    """BRAM18K tiles for a plain (weight/FIFO) buffer of ``bits`` bits."""
    if bits < 0:
        raise ShapeError("buffer bits must be non-negative")
    if bits == 0:
        return 0
    return -(-bits // BRAM18K_BITS)
