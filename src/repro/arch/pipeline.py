"""Two-level pipeline timing composition (paper Section 4.3).

*Intra-layer*: each layer engine overlaps its load / compute / store
phases, so a layer's throughput is set by its slowest phase and the other
two are hidden (paper Figure 2d).

*Inter-layer*: the layers of a fusion group run as a dataflow pipeline;
"the pipeline stage length is determined by the longest stage" (Figure
2c), plus a one-time fill while the pyramid charges up.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ShapeError


def three_phase_latency(
    load_cycles: float, compute_cycles: float, store_cycles: float, rounds: int = 1
) -> float:
    """Latency of ``rounds`` iterations of a load/compute/store pipeline.

    Steady state runs at the slowest phase; the first iteration also pays
    the two other phases once (fill + drain).
    """
    if rounds < 1:
        raise ShapeError(f"rounds must be positive, got {rounds}")
    phases = (load_cycles, compute_cycles, store_cycles)
    if any(p < 0 for p in phases):
        raise ShapeError("phase cycles must be non-negative")
    bottleneck = max(phases)
    return bottleneck * rounds + (sum(phases) - bottleneck)


def dataflow_group_latency(
    stage_cycles: Sequence[float], fill_cycles: Sequence[float] = ()
) -> float:
    """Latency of a fused group of concurrently running stages.

    ``stage_cycles[l]`` is layer ``l``'s total busy time for the whole
    image (its intra-layer bottleneck phase summed over all rows).  In
    steady state all stages overlap, so the group takes as long as its
    slowest stage; each stage additionally delays the pipeline by its
    ``fill_cycles`` before the first datum reaches the next stage.
    """
    if not stage_cycles:
        raise ShapeError("a fusion group needs at least one stage")
    if any(c < 0 for c in stage_cycles):
        raise ShapeError("stage cycles must be non-negative")
    fill = list(fill_cycles) if fill_cycles else [0.0] * len(stage_cycles)
    if len(fill) != len(stage_cycles):
        raise ShapeError("fill_cycles length must match stage_cycles")
    if any(f < 0 for f in fill):
        raise ShapeError("fill cycles must be non-negative")
    return max(stage_cycles) + sum(fill)


def pipeline_efficiency(stage_cycles: Sequence[float]) -> float:
    """Mean stage utilization under the slowest stage (balance metric).

    1.0 means the inter-layer pipeline is perfectly balanced — the
    objective Algorithm 2's resource allocation pushes towards.
    """
    if not stage_cycles:
        raise ShapeError("a fusion group needs at least one stage")
    bottleneck = max(stage_cycles)
    if bottleneck == 0:
        return 1.0
    return sum(stage_cycles) / (len(stage_cycles) * bottleneck)
