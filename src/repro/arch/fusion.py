"""Fusion groups and pyramid analysis (paper Sections 4.1, 5).

A fusion group is a contiguous run of layers executed as one on-chip
dataflow pipeline.  Only the group's first input and last output touch
DRAM; "all the necessary intermediate tiles in the pyramid can be
computed, without storing and retrieving the intermediate data".

This module computes, for any layer range ``[i, j]`` of a network:

* the minimal feature-map transfer ``min_t[i][j]`` the DP uses — the sum
  of layer ``i``'s input and layer ``j``'s output feature-map sizes;
* the *pyramid*: how many rows (receptive field) of each intermediate
  layer one output row of the group depends on, which sizes the per-layer
  line buffers;
* weight-storage requirements of the group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ShapeError
from repro.nn.layers import ConvLayer, Layer, LRNLayer, PoolLayer
from repro.nn.modules import InceptionModule
from repro.nn.network import LayerInfo, Network


def layer_window(layer: Layer) -> Tuple[int, int]:
    """(window rows K, stride rows S) the layer consumes per output row."""
    if isinstance(layer, (ConvLayer, PoolLayer)):
        return layer.kernel, layer.stride
    if isinstance(layer, InceptionModule):
        return layer.max_kernel, 1
    if isinstance(layer, LRNLayer):
        return 1, 1
    return 1, 1


@dataclass(frozen=True)
class PyramidLevel:
    """Receptive-field footprint of one layer inside a fusion group.

    Attributes:
        info: The layer with resolved shapes.
        window_rows: Rows of this layer's *input* needed concurrently
            (the line-buffer window ``K``).
        stride_rows: Input rows retired per output row (``S``).
        input_rows_per_group_row: Rows of this layer's input that one row
            of the *group's* final output depends on (pyramid width).
    """

    info: LayerInfo
    window_rows: int
    stride_rows: int
    input_rows_per_group_row: int


class FusionGroup:
    """A contiguous layer range ``[start, stop)`` fused into one pipeline."""

    def __init__(self, network: Network, start: int, stop: int):
        if not 0 <= start < stop <= len(network):
            raise ShapeError(
                f"fusion group [{start}:{stop}] out of range for "
                f"{len(network)}-layer network"
            )
        self.network = network
        self.start = start
        self.stop = stop
        self._infos = [network[i] for i in range(start, stop)]

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def infos(self) -> List[LayerInfo]:
        return list(self._infos)

    @property
    def first(self) -> LayerInfo:
        return self._infos[0]

    @property
    def last(self) -> LayerInfo:
        return self._infos[-1]

    # -- transfer -----------------------------------------------------------

    def min_transfer_bytes(self, element_bytes: int = 2) -> int:
        """DRAM feature-map traffic of the fused group (paper's min_t)."""
        return (self.first.input_size + self.last.output_size) * element_bytes

    def unfused_transfer_bytes(self, element_bytes: int = 2) -> int:
        """Traffic if every member layer round-tripped DRAM instead."""
        return sum(
            (info.input_size + info.output_size) * element_bytes
            for info in self._infos
        )

    def transfer_saving_bytes(self, element_bytes: int = 2) -> int:
        """Feature-map bytes fusion keeps on chip."""
        return self.unfused_transfer_bytes(element_bytes) - self.min_transfer_bytes(
            element_bytes
        )

    def weight_bytes(self, element_bytes: int = 2) -> int:
        """Kernel weights resident on chip while the group runs."""
        return sum(info.weight_count for info in self._infos) * element_bytes

    def total_ops(self) -> int:
        return sum(info.ops for info in self._infos)

    # -- pyramid ------------------------------------------------------------

    def pyramid(self) -> List[PyramidLevel]:
        """Per-layer receptive-field footprint, first layer first.

        Walking backwards from one row of the group's output: a layer
        whose window is ``K`` rows with stride ``S`` needs
        ``K + (rows_out - 1) * S`` input rows to produce ``rows_out``
        output rows.
        """
        rows_needed = 1
        levels_reversed: List[PyramidLevel] = []
        for info in reversed(self._infos):
            window, stride = layer_window(info.layer)
            input_rows = window + (rows_needed - 1) * stride
            levels_reversed.append(
                PyramidLevel(
                    info=info,
                    window_rows=window,
                    stride_rows=stride,
                    input_rows_per_group_row=input_rows,
                )
            )
            rows_needed = input_rows
        return list(reversed(levels_reversed))

    def input_rows_per_output_row(self) -> int:
        """Rows of the group input one output row depends on (pyramid base)."""
        return self.pyramid()[0].input_rows_per_group_row

    def __repr__(self) -> str:
        names = ", ".join(info.name for info in self._infos)
        return f"FusionGroup([{self.start}:{self.stop}] {names})"


def group_min_transfer_bytes(
    network: Network, start: int, stop: int, element_bytes: int = 2
) -> int:
    """``min_t[start][stop-1]`` without building a FusionGroup object."""
    return FusionGroup(network, start, stop).min_transfer_bytes(element_bytes)


def enumerate_groupings(layer_count: int, max_depth: int) -> List[List[Tuple[int, int]]]:
    """All partitions of ``0..layer_count-1`` into contiguous groups.

    Exponential — used only by the exhaustive test oracle on small
    networks.  Groups longer than ``max_depth`` are excluded.
    """
    if layer_count == 0:
        return [[]]
    result: List[List[Tuple[int, int]]] = []

    def extend(start: int, acc: List[Tuple[int, int]]) -> None:
        if start == layer_count:
            result.append(list(acc))
            return
        for stop in range(start + 1, min(layer_count, start + max_depth) + 1):
            acc.append((start, stop))
            extend(stop, acc)
            acc.pop()

    extend(0, [])
    return result
