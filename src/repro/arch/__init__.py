"""Fusion architecture: line buffers, layer pyramids, pipeline composition.

Implements Section 4 of the paper: the circular line buffer that feeds
each layer engine (:mod:`repro.arch.line_buffer`), the pyramid analysis
that determines what a fused group must keep on chip and what it saves in
off-chip traffic (:mod:`repro.arch.fusion`), and the two-level
(intra-layer / inter-layer) pipeline timing composition
(:mod:`repro.arch.pipeline`).
"""

from repro.arch.line_buffer import CircularLineBuffer, line_buffer_brams, stream_conv2d
from repro.arch.fusion import FusionGroup, group_min_transfer_bytes
from repro.arch.pipeline import dataflow_group_latency, three_phase_latency

__all__ = [
    "CircularLineBuffer",
    "FusionGroup",
    "dataflow_group_latency",
    "group_min_transfer_bytes",
    "line_buffer_brams",
    "stream_conv2d",
    "three_phase_latency",
]
